package nn

import (
	"fmt"
	"math"

	"tango/internal/par"
	"tango/internal/tensor"
)

// This file implements the batched compute engine: every forward kernel over
// a leading batch dimension N, built so a batch of N samples produces
// BIT-IDENTICAL results to running each sample through the single-sample
// engine (and therefore to the direct reference kernels).
//
// Layout conventions:
//
//   - Feature-map batches are rank-4 NCHW tensors (sample-major, each
//     sample a contiguous CHW block).
//   - Vector batches are rank-2 (N, F) tensors.
//   - Inside the heavy kernels the batch is folded into the GEMM column
//     dimension: batched im2col stages an l-major (k x N*outH*outW) patch
//     matrix so each per-group GEMM sees every output pixel of every image
//     at once, and the batched fully-connected layer transposes the inputs
//     to (inF x N) so one GEMM replaces N mat-vecs and streams the weight
//     matrix once per batch instead of once per sample.
//
// Bit-exactness: each output element is an independent dot product
// accumulated left to right from its bias (see the tensor.GemmNN contract).
// Folding the batch into the column dimension adds columns but never
// changes any element's summation order, so batched outputs equal the
// single-sample engine's bit for bit, for any batch size, blocking or
// worker count.

// batchBuf returns the batch staging buffer for the given slot, sized to n.
// Slot contents are only valid within one engine call.
func (s *Scratch) batchBuf(slot, n int) []float32 {
	if s == nil {
		return make([]float32, n)
	}
	for len(s.bbufs) <= slot {
		s.bbufs = append(s.bbufs, nil)
	}
	if cap(s.bbufs[slot]) < n {
		s.bbufs[slot] = make([]float32, n)
	}
	return s.bbufs[slot][:n]
}

// out4 returns an NCHW output tensor (arena-backed when s is non-nil).
func (s *Scratch) out4(n, c, h, w int) *tensor.Tensor {
	if s == nil {
		return tensor.New(n, c, h, w)
	}
	return s.arena.Get4(n, c, h, w)
}

// out2 returns a rank-2 (N, F) output tensor (arena-backed when s is
// non-nil).
func (s *Scratch) out2(n, f int) *tensor.Tensor {
	if s == nil {
		return tensor.New(n, f)
	}
	return s.arena.Get2(n, f)
}

// checkBatchInput validates the leading batch dimension of a rank-4 input.
func checkBatchInput(op string, input *tensor.Tensor, wantC int) (n, c, h, w int, err error) {
	if input == nil {
		return 0, 0, 0, 0, fmt.Errorf("nn: %s: %w: nil batch input", op, tensor.ErrShape)
	}
	if input.Rank() != 4 {
		return 0, 0, 0, 0, fmt.Errorf("nn: %s: %w: batch input must be NCHW, got shape %v",
			op, tensor.ErrShape, input.Shape())
	}
	n, c, h, w = input.Dim(0), input.Dim(1), input.Dim(2), input.Dim(3)
	if wantC > 0 && c != wantC {
		return 0, 0, 0, 0, fmt.Errorf("nn: %s: %w: batch input has %d channels, want %d",
			op, tensor.ErrShape, c, wantC)
	}
	return n, c, h, w, nil
}

// Conv2DBatch is the batched engine convolution over an NCHW input: one
// l-major im2col staging pass for all N images, then one GEMM per channel
// group whose column dimension spans every output pixel of every image
// (M = N*outH*outW in the paper's orientation).  Results are bit-identical
// to Conv2D on each sample.
func (s *Scratch) Conv2DBatch(input, weights, bias *tensor.Tensor, p ConvParams) (*tensor.Tensor, error) {
	nImg, _, inH, inW, err := checkBatchInput("conv", input, p.InChannels)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if weights == nil || weights.Len() != p.WeightCount() {
		return nil, fmt.Errorf("nn: conv: %w: expects %d weights, got %d",
			tensor.ErrShape, p.WeightCount(), tensorLen(weights))
	}
	if bias != nil && bias.Len() != p.OutChannels {
		return nil, fmt.Errorf("nn: conv: %w: expects %d biases, got %d",
			tensor.ErrShape, p.OutChannels, bias.Len())
	}
	outH, outW := p.OutputDims(inH, inW)
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: conv output dims %dx%d are not positive for input %dx%d",
			outH, outW, inH, inW)
	}

	groups := p.groups()
	inCPerGroup := p.InChannels / groups
	outCPerGroup := p.OutChannels / groups
	n1 := outH * outW
	nTot := nImg * n1
	k := inCPerGroup * p.KernelH * p.KernelW
	out := s.out4(nImg, p.OutChannels, outH, outW)

	colT := s.batchBuf(0, k*nTot)
	gbuf := s.batchBuf(1, outCPerGroup*nTot)
	in := input.Data()
	w := weights.Data()
	o := out.Data()
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	sampleStride := input.Len() / nImg
	outSample := p.OutChannels * n1
	workers := s.Workers()

	for g := 0; g < groups; g++ {
		icBase := g * inCPerGroup
		im2colTBatchPar(colT, in, nImg, sampleStride, inH, inW, icBase, inCPerGroup, p, outH, outW, workers)
		oc0 := g * outCPerGroup
		var gb []float32
		if biasData != nil {
			gb = biasData[oc0 : oc0+outCPerGroup]
		}
		tensor.GemmNNParallel(gbuf, w[oc0*k:(oc0+outCPerGroup)*k], colT, gb,
			outCPerGroup, nTot, k, nTot, workers)
		// Un-interleave the channel-major GEMM output (outC x N*n1) into the
		// sample-major NCHW layout: contiguous n1-float plane copies.
		for ocg := 0; ocg < outCPerGroup; ocg++ {
			src := gbuf[ocg*nTot : (ocg+1)*nTot]
			for img := 0; img < nImg; img++ {
				dst := o[img*outSample+(oc0+ocg)*n1:]
				copy(dst[:n1], src[img*n1:(img+1)*n1])
			}
		}
	}
	return out, nil
}

// im2colTBatch stages receptive-field patches for all images in l-major
// layout: colT[l*(nImg*n1) + img*n1 + oy*outW + ox] where l runs over
// (channel, ky, kx) of the group's input channels.  Padding positions are
// zero.  The l-major layout keeps eight neighbouring output pixels
// contiguous for the vector GEMM kernel.
func im2colTBatch(colT, in []float32, nImg, sampleStride, inH, inW, icBase, icCount int, p ConvParams, outH, outW int) {
	im2colTBatchRange(colT, in, nImg, sampleStride, inH, inW, icBase, p, outH, outW,
		0, icCount*p.KernelH*p.KernelW)
}

// im2colTBatchRange stages patch rows [l0, l1) of the l-major layout; one
// call with the full range equals im2colTBatch.  Each row is written by
// exactly one call, so any partitioning of the range produces identical
// bytes.
func im2colTBatchRange(colT, in []float32, nImg, sampleStride, inH, inW, icBase int, p ConvParams, outH, outW, l0, l1 int) {
	n1 := outH * outW
	nTot := nImg * n1
	khw := p.KernelH * p.KernelW
	for l := l0; l < l1; l++ {
		ic := l / khw
		rem := l - ic*khw
		ky := rem / p.KernelW
		kx := rem - ky*p.KernelW
		planeOff := (icBase + ic) * inH * inW
		row := colT[l*nTot : (l+1)*nTot]
		for img := 0; img < nImg; img++ {
			plane := in[img*sampleStride+planeOff : img*sampleStride+planeOff+inH*inW]
			packPatchRow(row[img*n1:(img+1)*n1], plane, inH, inW, p, outH, outW, ky, kx, 0)
		}
	}
}

// im2colTBatchPar fans the staging rows over the worker pool in contiguous
// index-ordered chunks.  Partitioning never changes the bytes written, so
// callers stay bit-identical for any worker count; small stagings run
// serially.
func im2colTBatchPar(colT, in []float32, nImg, sampleStride, inH, inW, icBase, icCount int, p ConvParams, outH, outW, workers int) {
	rows := icCount * p.KernelH * p.KernelW
	nTot := nImg * outH * outW
	if workers > rows {
		workers = rows
	}
	if workers <= 1 || int64(rows)*int64(nTot) < stagingParMin {
		im2colTBatchRange(colT, in, nImg, sampleStride, inH, inW, icBase, p, outH, outW, 0, rows)
		return
	}
	chunk := (rows + workers - 1) / workers
	nChunks := (rows + chunk - 1) / chunk
	_ = par.ForEach(workers, nChunks, func(c int) error {
		l0 := c * chunk
		l1 := l0 + chunk
		if l1 > rows {
			l1 = rows
		}
		im2colTBatchRange(colT, in, nImg, sampleStride, inH, inW, icBase, p, outH, outW, l0, l1)
		return nil
	})
}

// stagingParMin is the element-count floor below which staging copies
// (im2col, batch transposes) stay serial: forking the pool costs more than
// the copy.
const stagingParMin = 1 << 15

// FullyConnectedBatch is the batched engine fully-connected layer: the
// batch's flattened inputs are transposed to (inF x N) and a single GEMM
// computes all samples, streaming the weight matrix once per batch instead
// of once per sample.  The input may be rank-2 (N, F) or rank-4 NCHW; each
// sample's features are its flattened contiguous block.  Results are
// bit-identical to FullyConnected on each sample.
func (s *Scratch) FullyConnectedBatch(input, weights, bias *tensor.Tensor, outFeatures int) (*tensor.Tensor, error) {
	if input == nil || input.Rank() < 2 {
		return nil, fmt.Errorf("nn: fc: %w: batch input must have a leading batch dimension, got %v",
			tensor.ErrShape, shapeOf(input))
	}
	nImg := input.Dim(0)
	inF := input.Len() / nImg
	if outFeatures <= 0 {
		return nil, fmt.Errorf("nn: fc output features must be positive, got %d", outFeatures)
	}
	if weights == nil || weights.Len() != outFeatures*inF {
		return nil, fmt.Errorf("nn: fc expects %d weights (%dx%d), got %d",
			outFeatures*inF, outFeatures, inF, tensorLen(weights))
	}
	if bias != nil && bias.Len() != outFeatures {
		return nil, fmt.Errorf("nn: fc expects %d biases, got %d", outFeatures, bias.Len())
	}

	in := input.Data()
	workers := s.Workers()
	xT := s.batchBuf(0, inF*nImg)
	transposeToColumnsPar(xT, in, nImg, inF, workers)
	yT := s.batchBuf(1, outFeatures*nImg)
	var biasData []float32
	if bias != nil {
		biasData = bias.Data()
	}
	tensor.GemmNNParallel(yT, weights.Data(), xT, biasData, outFeatures, nImg, inF, nImg, workers)
	out := s.out2(nImg, outFeatures)
	transposeToRowsPar(out.Data(), yT, nImg, outFeatures, nImg, workers)
	return out, nil
}

// transposeToColumns repacks sample-major rows (n x f) into feature-major
// columns (f x n): dst[l*n + smp] = src[smp*f + l].
func transposeToColumns(dst, src []float32, n, f int) {
	for smp := 0; smp < n; smp++ {
		row := src[smp*f : (smp+1)*f]
		for l, v := range row {
			dst[l*n+smp] = v
		}
	}
}

// transposeToRows repacks feature-major columns (f x n) back into
// sample-major rows (n x f): dst[smp*f + l] = src[l*n + smp].
func transposeToRows(dst, src []float32, n, f int) {
	transposeToRowsRange(dst, src, n, f, n, 0, f)
}

// transposeToColumnsRange writes feature rows [f0, f1) of the (f x ld)
// column-major destination.  Disjoint ranges touch disjoint dst rows.
func transposeToColumnsRange(dst, src []float32, n, f, ld, f0, f1 int) {
	for smp := 0; smp < n; smp++ {
		row := src[smp*f+f0 : smp*f+f1]
		for l, v := range row {
			dst[(f0+l)*ld+smp] = v
		}
	}
}

// transposeToColumnsPar is transposeToColumns fanned over the worker pool in
// contiguous feature chunks; bytes are identical for any worker count.
func transposeToColumnsPar(dst, src []float32, n, f, workers int) {
	if workers > f {
		workers = f
	}
	if workers <= 1 || int64(n)*int64(f) < stagingParMin {
		transposeToColumns(dst, src, n, f)
		return
	}
	chunk := (f + workers - 1) / workers
	nChunks := (f + chunk - 1) / chunk
	_ = par.ForEach(workers, nChunks, func(c int) error {
		f0 := c * chunk
		f1 := f0 + chunk
		if f1 > f {
			f1 = f
		}
		transposeToColumnsRange(dst, src, n, f, n, f0, f1)
		return nil
	})
}

// transposeToColumnsPad is transposeToColumns with the destination rows ld
// floats apart (ld >= n); pad lanes [n, ld) are zeroed so a column-padded
// GEMM reads defined values.  Parallel over feature chunks like
// transposeToColumnsPar.
func transposeToColumnsPad(dst, src []float32, n, f, ld, workers int) {
	if workers > f {
		workers = f
	}
	if workers <= 1 || int64(ld)*int64(f) < stagingParMin {
		transposeToColumnsPadRange(dst, src, n, f, ld, 0, f)
		return
	}
	chunk := (f + workers - 1) / workers
	nChunks := (f + chunk - 1) / chunk
	_ = par.ForEach(workers, nChunks, func(c int) error {
		f0 := c * chunk
		f1 := f0 + chunk
		if f1 > f {
			f1 = f
		}
		transposeToColumnsPadRange(dst, src, n, f, ld, f0, f1)
		return nil
	})
}

func transposeToColumnsPadRange(dst, src []float32, n, f, ld, f0, f1 int) {
	if ld > n {
		for l := f0; l < f1; l++ {
			pad := dst[l*ld+n : (l+1)*ld]
			for i := range pad {
				pad[i] = 0
			}
		}
	}
	transposeToColumnsRange(dst, src, n, f, ld, f0, f1)
}

// transposeToRowsRange reads the (f x ld) column-major source back into
// sample rows [s0, s1).  Disjoint ranges touch disjoint dst rows.
func transposeToRowsRange(dst, src []float32, n, f, ld, s0, s1 int) {
	for smp := s0; smp < s1; smp++ {
		row := dst[smp*f : (smp+1)*f]
		for l := range row {
			row[l] = src[l*ld+smp]
		}
	}
}

// transposeToRowsPar is transposeToRows from an ld-strided column-major
// source, fanned over the worker pool in contiguous sample chunks.
func transposeToRowsPar(dst, src []float32, n, f, ld, workers int) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || int64(n)*int64(f) < stagingParMin {
		transposeToRowsRange(dst, src, n, f, ld, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	nChunks := (n + chunk - 1) / chunk
	_ = par.ForEach(workers, nChunks, func(c int) error {
		s0 := c * chunk
		s1 := s0 + chunk
		if s1 > n {
			s1 = n
		}
		transposeToRowsRange(dst, src, n, f, ld, s0, s1)
		return nil
	})
}

// Pool2DBatch is the batched engine pooling layer.
func (s *Scratch) Pool2DBatch(input *tensor.Tensor, p PoolParams) (*tensor.Tensor, error) {
	nImg, c, inH, inW, err := checkBatchInput("pool", input, 0)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	outH, outW := p.OutputDims(inH, inW)
	if outH <= 0 || outW <= 0 {
		return nil, fmt.Errorf("nn: pool output dims %dx%d are not positive for input %dx%d",
			outH, outW, inH, inW)
	}
	out := s.out4(nImg, c, outH, outW)
	in := input.Data()
	o := out.Data()
	inSample := c * inH * inW
	outSample := c * outH * outW
	for img := 0; img < nImg; img++ {
		pool2DCore(o[img*outSample:(img+1)*outSample], in[img*inSample:(img+1)*inSample],
			c, inH, inW, outH, outW, p)
	}
	return out, nil
}

// GlobalAvgPoolBatch is the batched engine global average pooling layer,
// returning a rank-2 (N, C) tensor.
func (s *Scratch) GlobalAvgPoolBatch(input *tensor.Tensor) (*tensor.Tensor, error) {
	nImg, c, h, w, err := checkBatchInput("global pool", input, 0)
	if err != nil {
		return nil, err
	}
	out := s.out2(nImg, c)
	in := input.Data()
	o := out.Data()
	inSample := c * h * w
	for img := 0; img < nImg; img++ {
		globalAvgPoolCore(o[img*c:(img+1)*c], in[img*inSample:(img+1)*inSample], c, h, w)
	}
	return out, nil
}

// LRNBatch is the batched engine local response normalization layer.
func (s *Scratch) LRNBatch(input *tensor.Tensor, p LRNParams) (*tensor.Tensor, error) {
	nImg, c, h, w, err := checkBatchInput("lrn", input, 0)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := s.out4(nImg, c, h, w)
	in := input.Data()
	o := out.Data()
	sample := c * h * w
	if s.lrnFastEligible(p) {
		sums := s.lrnSums(h * w)
		for img := 0; img < nImg; img++ {
			lrnCoreFast(o[img*sample:(img+1)*sample], in[img*sample:(img+1)*sample], c, h, w, p, sums)
		}
		return out, nil
	}
	for img := 0; img < nImg; img++ {
		lrnCore(o[img*sample:(img+1)*sample], in[img*sample:(img+1)*sample], c, h, w, p)
	}
	return out, nil
}

// BatchNormBatch is the batched engine batch normalization layer.
func (s *Scratch) BatchNormBatch(input *tensor.Tensor, p BatchNormParams) (*tensor.Tensor, error) {
	nImg, c, h, w, err := checkBatchInput("batchnorm", input, 0)
	if err != nil {
		return nil, err
	}
	if p.Mean == nil || p.Variance == nil {
		return nil, fmt.Errorf("nn: batchnorm requires mean and variance")
	}
	if p.Mean.Len() != c || p.Variance.Len() != c {
		return nil, fmt.Errorf("nn: batchnorm stats length %d/%d, want %d", p.Mean.Len(), p.Variance.Len(), c)
	}
	out := s.out4(nImg, c, h, w)
	in := input.Data()
	o := out.Data()
	sample := c * h * w
	for img := 0; img < nImg; img++ {
		batchNormCore(o[img*sample:(img+1)*sample], in[img*sample:(img+1)*sample], c, h, w, p)
	}
	return out, nil
}

// ScaleBatch is the batched engine per-channel affine layer.
func (s *Scratch) ScaleBatch(input, gamma, beta *tensor.Tensor) (*tensor.Tensor, error) {
	nImg, c, h, w, err := checkBatchInput("scale", input, 0)
	if err != nil {
		return nil, err
	}
	if gamma == nil || gamma.Len() != c {
		return nil, fmt.Errorf("nn: scale expects %d gammas", c)
	}
	if beta != nil && beta.Len() != c {
		return nil, fmt.Errorf("nn: scale expects %d betas, got %d", c, beta.Len())
	}
	out := s.out4(nImg, c, h, w)
	in := input.Data()
	o := out.Data()
	sample := c * h * w
	for img := 0; img < nImg; img++ {
		scaleCore(o[img*sample:(img+1)*sample], in[img*sample:(img+1)*sample], c, h, w, gamma, beta)
	}
	return out, nil
}

// ReLUBatch is the batched engine out-of-place ReLU.
func (s *Scratch) ReLUBatch(input *tensor.Tensor) (*tensor.Tensor, error) {
	if input == nil {
		return nil, fmt.Errorf("nn: relu: %w: nil input", tensor.ErrShape)
	}
	out := s.outLike(input)
	reluInto(out.Data(), input.Data())
	return out, nil
}

// EltwiseAddBatch is the batched engine element-wise addition.
func (s *Scratch) EltwiseAddBatch(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	if err := checkEltwiseArgs("add", a, b); err != nil {
		return nil, err
	}
	out := s.outLike(a)
	eltwiseAddInto(out.Data(), a.Data(), b.Data())
	return out, nil
}

// ConcatChannelsBatch is the batched engine channel concatenation over NCHW
// inputs sharing batch and spatial dimensions.
func (s *Scratch) ConcatChannelsBatch(parts ...*tensor.Tensor) (*tensor.Tensor, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("nn: concat requires at least one tensor")
	}
	var nImg, h, w, totalC int
	for i, p := range parts {
		pn, pc, ph, pw, err := checkBatchInput("concat", p, 0)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			nImg, h, w = pn, ph, pw
		} else if pn != nImg || ph != h || pw != w {
			return nil, fmt.Errorf("%w: concat batch/spatial dims %dx%dx%d vs %dx%dx%d",
				tensor.ErrShape, pn, ph, pw, nImg, h, w)
		}
		totalC += pc
	}
	out := s.out4(nImg, totalC, h, w)
	o := out.Data()
	outSample := totalC * h * w
	for img := 0; img < nImg; img++ {
		off := img * outSample
		for _, p := range parts {
			sample := p.Len() / nImg
			copy(o[off:off+sample], p.Data()[img*sample:(img+1)*sample])
			off += sample
		}
	}
	return out, nil
}

// SoftmaxBatch is the batched engine softmax over a rank-2 (N, F) input,
// applied independently to each sample row.
func (s *Scratch) SoftmaxBatch(input *tensor.Tensor) (*tensor.Tensor, error) {
	if input == nil || input.Rank() < 2 || input.Len() == 0 {
		return nil, fmt.Errorf("nn: softmax: %w: batch input must be rank >= 2 and non-empty, got %v",
			tensor.ErrShape, shapeOf(input))
	}
	nImg := input.Dim(0)
	f := input.Len() / nImg
	out := s.outLike(input)
	in := input.Data()
	o := out.Data()
	for img := 0; img < nImg; img++ {
		softmaxInto(o[img*f:(img+1)*f], in[img*f:(img+1)*f])
	}
	return out, nil
}

// gatePreBatch computes pre = (Wx*X + Uh*H) + b over the whole batch with
// two GEMMs, in the exact per-element expression order of gatePre: the Wx
// product accumulates first, the Uh product second, the bias last.  pre and
// tmp are (hidden x n) feature-major; xT and hT are the transposed inputs.
func (s *Scratch) gatePreBatch(pre, tmp []float32, wx, uh, b *tensor.Tensor, xT, hT []float32, hidden, in, n, workers int) {
	tensor.GemmNNParallel(pre, wx.Data(), xT, nil, hidden, n, in, n, workers)
	tensor.GemmNNParallel(tmp, uh.Data(), hT, nil, hidden, n, hidden, n, workers)
	bd := b.Data()
	for hr := 0; hr < hidden; hr++ {
		bv := bd[hr]
		prow := pre[hr*n : (hr+1)*n]
		trow := tmp[hr*n : (hr+1)*n]
		for i := range prow {
			prow[i] = (prow[i] + trow[i]) + bv
		}
	}
}

// LSTMSeqBatch runs an LSTM over n sequences at once with per-sample hidden
// and cell state.  seq is laid out (steps x n x input), each time step a
// contiguous sample-major block.  It returns the final hidden state as a
// rank-2 (n, hidden) tensor.  Results are bit-identical to stepping each
// sequence through LSTMStep.
func (s *Scratch) LSTMSeqBatch(w *LSTMWeights, seq []float32, n, steps int) (*tensor.Tensor, error) {
	return s.LSTMSeqBatchPacked(w, nil, seq, n, steps)
}

// LSTMSeqBatchPacked is LSTMSeqBatch with an optional fast-tier gate pack:
// under a fast numerics tier the gate GEMMs run on the prepacked
// multi-chain kernels.
func (s *Scratch) LSTMSeqBatchPacked(w *LSTMWeights, pk *RNNPack, seq []float32, n, steps int) (*tensor.Tensor, error) {
	if w == nil {
		return nil, fmt.Errorf("nn: lstm batch: nil weights")
	}
	if n <= 0 || steps <= 0 {
		return nil, fmt.Errorf("nn: lstm batch: %w: need positive batch and steps, got n=%d steps=%d",
			tensor.ErrShape, n, steps)
	}
	if len(seq) != steps*n*w.Input {
		return nil, fmt.Errorf("nn: lstm batch: %w: sequence buffer has %d elements, want %d",
			tensor.ErrShape, len(seq), steps*n*w.Input)
	}
	hidden := w.Hidden
	hn := hidden * n
	// Feature-major state and gate buffers: the state doubles as the GEMM
	// B operand of the recurrent term, so it never needs re-transposing.
	hT := s.vec(0, hn)
	cT := s.vec(1, hn)
	pi := s.vec(2, hn)
	pf := s.vec(3, hn)
	po := s.vec(4, hn)
	pc := s.vec(5, hn)
	tmp := s.vec(6, hn)
	xT := s.vec(7, n*w.Input)
	for i := range hT {
		hT[i] = 0
	}
	for i := range cT {
		cT[i] = 0
	}
	workers := s.Workers()
	fast := pk != nil && s.Numerics() != NumericsReference

	for t := 0; t < steps; t++ {
		x := seq[t*n*w.Input : (t+1)*n*w.Input]
		transposeToColumnsPar(xT, x, n, w.Input, workers)
		if fast {
			s.gatePreBatchFast(pi, tmp, pk.gates[0], w.Bi, xT, hT, hidden, n, workers)
			s.gatePreBatchFast(pf, tmp, pk.gates[1], w.Bf, xT, hT, hidden, n, workers)
			s.gatePreBatchFast(po, tmp, pk.gates[2], w.Bo, xT, hT, hidden, n, workers)
			s.gatePreBatchFast(pc, tmp, pk.gates[3], w.Bc, xT, hT, hidden, n, workers)
		} else {
			s.gatePreBatch(pi, tmp, w.Wi, w.Ui, w.Bi, xT, hT, hidden, w.Input, n, workers)
			s.gatePreBatch(pf, tmp, w.Wf, w.Uf, w.Bf, xT, hT, hidden, w.Input, n, workers)
			s.gatePreBatch(po, tmp, w.Wo, w.Uo, w.Bo, xT, hT, hidden, w.Input, n, workers)
			s.gatePreBatch(pc, tmp, w.Wc, w.Uc, w.Bc, xT, hT, hidden, w.Input, n, workers)
		}
		sigmoidInPlace(pi)
		sigmoidInPlace(pf)
		sigmoidInPlace(po)
		tanhInPlace(pc)
		for i := 0; i < hn; i++ {
			fc := pf[i] * cT[i]
			ig := pi[i] * pc[i]
			cT[i] = fc + ig
		}
		for i := 0; i < hn; i++ {
			hT[i] = po[i] * float32(math.Tanh(float64(cT[i])))
		}
	}
	out := s.out2(n, hidden)
	transposeToRowsPar(out.Data(), hT, n, hidden, n, workers)
	return out, nil
}

// GRUSeqBatch runs a GRU over n sequences at once with per-sample hidden
// state.  seq is laid out (steps x n x input).  It returns the final hidden
// state as a rank-2 (n, hidden) tensor, bit-identical to stepping each
// sequence through GRUStep.
func (s *Scratch) GRUSeqBatch(w *GRUWeights, seq []float32, n, steps int) (*tensor.Tensor, error) {
	return s.GRUSeqBatchPacked(w, nil, seq, n, steps)
}

// GRUSeqBatchPacked is GRUSeqBatch with an optional fast-tier gate pack.
func (s *Scratch) GRUSeqBatchPacked(w *GRUWeights, pk *RNNPack, seq []float32, n, steps int) (*tensor.Tensor, error) {
	if w == nil {
		return nil, fmt.Errorf("nn: gru batch: nil weights")
	}
	if n <= 0 || steps <= 0 {
		return nil, fmt.Errorf("nn: gru batch: %w: need positive batch and steps, got n=%d steps=%d",
			tensor.ErrShape, n, steps)
	}
	if len(seq) != steps*n*w.Input {
		return nil, fmt.Errorf("nn: gru batch: %w: sequence buffer has %d elements, want %d",
			tensor.ErrShape, len(seq), steps*n*w.Input)
	}
	hidden := w.Hidden
	hn := hidden * n
	hT := s.vec(0, hn)
	r := s.vec(1, hn)
	z := s.vec(2, hn)
	ng := s.vec(3, hn)
	rh := s.vec(4, hn)
	tmp := s.vec(5, hn)
	xT := s.vec(6, n*w.Input)
	for i := range hT {
		hT[i] = 0
	}
	workers := s.Workers()
	fast := pk != nil && s.Numerics() != NumericsReference

	for t := 0; t < steps; t++ {
		x := seq[t*n*w.Input : (t+1)*n*w.Input]
		transposeToColumnsPar(xT, x, n, w.Input, workers)
		if fast {
			s.gatePreBatchFast(r, tmp, pk.gates[0], w.Br, xT, hT, hidden, n, workers)
			s.gatePreBatchFast(z, tmp, pk.gates[1], w.Bz, xT, hT, hidden, n, workers)
		} else {
			s.gatePreBatch(r, tmp, w.Wr, w.Ur, w.Br, xT, hT, hidden, w.Input, n, workers)
			s.gatePreBatch(z, tmp, w.Wz, w.Uz, w.Bz, xT, hT, hidden, w.Input, n, workers)
		}
		sigmoidInPlace(r)
		sigmoidInPlace(z)
		for i := 0; i < hn; i++ {
			rh[i] = r[i] * hT[i]
		}
		if fast {
			s.gatePreBatchFast(ng, tmp, pk.gates[2], w.Bh, xT, rh, hidden, n, workers)
		} else {
			s.gatePreBatch(ng, tmp, w.Wh, w.Uh, w.Bh, xT, rh, hidden, w.Input, n, workers)
		}
		tanhInPlace(ng)
		for i := 0; i < hn; i++ {
			zi := z[i]
			hT[i] = (1-zi)*ng[i] + zi*hT[i]
		}
	}
	out := s.out2(n, hidden)
	transposeToRowsPar(out.Data(), hT, n, hidden, n, workers)
	return out, nil
}
