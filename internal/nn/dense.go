package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// checkFullyConnectedArgs validates a fully-connected call and returns the
// input feature count.
func checkFullyConnectedArgs(input, weights, bias *tensor.Tensor, outFeatures int) (int, error) {
	if outFeatures <= 0 {
		return 0, fmt.Errorf("nn: fc output features must be positive, got %d", outFeatures)
	}
	if input == nil || input.Len() == 0 {
		return 0, fmt.Errorf("nn: fc: %w: nil or empty input", tensor.ErrShape)
	}
	if weights == nil {
		return 0, fmt.Errorf("nn: fc: %w: nil weights", tensor.ErrShape)
	}
	inFeatures := input.Len()
	if weights.Len() != outFeatures*inFeatures {
		return 0, fmt.Errorf("nn: fc expects %d weights (%dx%d), got %d",
			outFeatures*inFeatures, outFeatures, inFeatures, weights.Len())
	}
	if bias != nil && bias.Len() != outFeatures {
		return 0, fmt.Errorf("nn: fc expects %d biases, got %d", outFeatures, bias.Len())
	}
	return inFeatures, nil
}

// FullyConnected computes out = W*x + b where x is the flattened input,
// W has shape (outFeatures x inFeatures) and b has length outFeatures.
// It returns a rank-1 tensor of length outFeatures.
//
// The product runs on the register-tiled kernel in package tensor; each
// output element accumulates its dot product left to right starting from its
// bias, so results are bit-identical to the scalar reference loop.
func FullyConnected(input, weights, bias *tensor.Tensor, outFeatures int) (*tensor.Tensor, error) {
	return (*Scratch)(nil).FullyConnected(input, weights, bias, outFeatures)
}

// checkMatVecArgs validates a MatVec call.
func checkMatVecArgs(w, x *tensor.Tensor, rows, cols int) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("nn: matvec dims must be positive, got %dx%d", rows, cols)
	}
	if w == nil || x == nil {
		return fmt.Errorf("nn: matvec: %w: nil matrix or vector", tensor.ErrShape)
	}
	if w.Len() != rows*cols {
		return fmt.Errorf("nn: matvec matrix needs %d elements, got %d", rows*cols, w.Len())
	}
	if x.Len() != cols {
		return fmt.Errorf("nn: matvec vector needs %d elements, got %d", cols, x.Len())
	}
	return nil
}

// MatVec computes y = W*x for a (rows x cols) matrix W, returning a rank-1
// tensor of length rows.  It is the core primitive of the RNN gate equations
// and deliberately remains a scalar loop: together with Conv2DDirect it forms
// the independent reference the blocked engine kernels are validated against.
func MatVec(w *tensor.Tensor, x *tensor.Tensor, rows, cols int) (*tensor.Tensor, error) {
	if err := checkMatVecArgs(w, x, rows, cols); err != nil {
		return nil, err
	}
	out := tensor.New(rows)
	scalarMatVec(out.Data(), w.Data(), x.Data(), nil, rows, cols)
	return out, nil
}

// scalarMatVec is the reference mat-vec: one scalar accumulator per row,
// columns ascending.  bias may be nil.
func scalarMatVec(dst, w, x, bias []float32, rows, cols int) {
	for r := 0; r < rows; r++ {
		var sum float32
		if bias != nil {
			sum = bias[r]
		}
		row := w[r*cols : (r+1)*cols]
		for c, xv := range x {
			sum += row[c] * xv
		}
		dst[r] = sum
	}
}

// checkSoftmaxArgs validates a Softmax input.
func checkSoftmaxArgs(input *tensor.Tensor) error {
	if input == nil || input.Len() == 0 {
		return fmt.Errorf("nn: softmax: %w: nil or empty input", tensor.ErrShape)
	}
	return nil
}

// Softmax returns the normalized exponential of the input, computed with the
// usual max-subtraction for numerical stability.  It returns an error for a
// nil or empty input.
func Softmax(input *tensor.Tensor) (*tensor.Tensor, error) {
	return (*Scratch)(nil).Softmax(input)
}

// softmaxInto computes the softmax of in into o; both have equal length.
func softmaxInto(o, in []float32) {
	max := float32(math.Inf(-1))
	for _, v := range in {
		if v > max {
			max = v
		}
	}
	sum := float64(0)
	for i, v := range in {
		e := math.Exp(float64(v - max))
		o[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return
	}
	inv := float32(1.0 / sum)
	for i := range o {
		o[i] *= inv
	}
}
