package nn

import (
	"fmt"
	"math"

	"tango/internal/tensor"
)

// FullyConnected computes out = W*x + b where x is the flattened input,
// W has shape (outFeatures x inFeatures) and b has length outFeatures.
// It returns a rank-1 tensor of length outFeatures.
func FullyConnected(input, weights, bias *tensor.Tensor, outFeatures int) (*tensor.Tensor, error) {
	if outFeatures <= 0 {
		return nil, fmt.Errorf("nn: fc output features must be positive, got %d", outFeatures)
	}
	inFeatures := input.Len()
	if weights.Len() != outFeatures*inFeatures {
		return nil, fmt.Errorf("nn: fc expects %d weights (%dx%d), got %d",
			outFeatures*inFeatures, outFeatures, inFeatures, weights.Len())
	}
	if bias != nil && bias.Len() != outFeatures {
		return nil, fmt.Errorf("nn: fc expects %d biases, got %d", outFeatures, bias.Len())
	}
	out := tensor.New(outFeatures)
	x := input.Data()
	w := weights.Data()
	o := out.Data()
	for of := 0; of < outFeatures; of++ {
		sum := float32(0)
		if bias != nil {
			sum = bias.Data()[of]
		}
		row := w[of*inFeatures : (of+1)*inFeatures]
		for i, xv := range x {
			sum += row[i] * xv
		}
		o[of] = sum
	}
	return out, nil
}

// MatVec computes y = W*x for a (rows x cols) matrix W, returning a rank-1
// tensor of length rows.  It is the core primitive of the RNN gate equations.
func MatVec(w *tensor.Tensor, x *tensor.Tensor, rows, cols int) (*tensor.Tensor, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("nn: matvec dims must be positive, got %dx%d", rows, cols)
	}
	if w.Len() != rows*cols {
		return nil, fmt.Errorf("nn: matvec matrix needs %d elements, got %d", rows*cols, w.Len())
	}
	if x.Len() != cols {
		return nil, fmt.Errorf("nn: matvec vector needs %d elements, got %d", cols, x.Len())
	}
	out := tensor.New(rows)
	wd := w.Data()
	xd := x.Data()
	for r := 0; r < rows; r++ {
		sum := float32(0)
		row := wd[r*cols : (r+1)*cols]
		for c, xv := range xd {
			sum += row[c] * xv
		}
		out.Data()[r] = sum
	}
	return out, nil
}

// Softmax returns the normalized exponential of the input, computed with the
// usual max-subtraction for numerical stability.
func Softmax(input *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(input.Shape()...)
	in := input.Data()
	max := input.Max()
	sum := float64(0)
	for i, v := range in {
		e := math.Exp(float64(v - max))
		out.Data()[i] = float32(e)
		sum += e
	}
	if sum == 0 {
		return out
	}
	inv := float32(1.0 / sum)
	for i := range out.Data() {
		out.Data()[i] *= inv
	}
	return out
}
