package nn_test

import (
	"fmt"
	"testing"

	"tango"
	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
)

// convCase is one convolution geometry to validate.
type convCase struct {
	name     string
	p        nn.ConvParams
	inH, inW int
}

// engineConvCases gathers every distinct convolution geometry used by the
// suite's networks (including the MobileNet extension, which exercises
// depthwise groups), with the spatial dims capped so the direct reference
// stays fast.  Kernel, stride, padding and group structure — everything that
// shapes the im2col lowering — are preserved exactly.
func engineConvCases(t *testing.T) []convCase {
	t.Helper()
	var cases []convCase
	seen := make(map[string]bool)
	names := append(append([]string{}, networks.Names()...), networks.ExtensionNames()...)
	for _, name := range names {
		n, err := networks.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if n.Kind != networks.KindCNN {
			continue
		}
		for li := range n.Layers {
			l := &n.Layers[li]
			if l.Type != networks.LayerConv {
				continue
			}
			var in []int
			if ref := l.Inputs[0]; ref == networks.InputRef {
				in = n.InputShape
			} else {
				in = n.Layers[ref].OutShape
			}
			p := l.Conv
			// Cap the spatial extent: keep at least two output positions per
			// axis so strides and padding still matter.
			capDim := func(in, k, s int) int {
				lim := k + 2*s + 3
				if in < lim {
					return in
				}
				return lim
			}
			inH := capDim(in[1], p.KernelH, p.StrideH)
			inW := capDim(in[2], p.KernelW, p.StrideW)
			key := fmt.Sprintf("%+v/%dx%d", p, inH, inW)
			if seen[key] {
				continue
			}
			seen[key] = true
			cases = append(cases, convCase{name: name + "/" + l.Name, p: p, inH: inH, inW: inW})
		}
	}
	if len(cases) < 20 {
		t.Fatalf("only %d conv cases collected; expected the suite to provide more", len(cases))
	}
	return cases
}

// TestEngineConvMatchesDirect validates the im2col+GEMM convolution against
// the direct reference loop, bit-exactly, over every conv geometry of the
// seven networks (plus extensions), serially and in parallel.
func TestEngineConvMatchesDirect(t *testing.T) {
	r := tensor.NewRNG(99)
	s := nn.NewScratch()
	sp := nn.NewScratch()
	sp.SetWorkers(4)
	for _, c := range engineConvCases(t) {
		in := tensor.New(c.p.InChannels, c.inH, c.inW)
		in.FillNormal(r, 1)
		w := tensor.New(c.p.WeightCount())
		w.FillNormal(r, 0.1)
		b := tensor.New(c.p.OutChannels)
		b.FillNormal(r, 0.05)

		want, err := nn.Conv2DDirect(in, w, b, c.p)
		if err != nil {
			t.Fatalf("%s: direct: %v", c.name, err)
		}
		for _, run := range []struct {
			label string
			fn    func() (*tensor.Tensor, error)
		}{
			{"free", func() (*tensor.Tensor, error) { return nn.Conv2D(in, w, b, c.p) }},
			{"scratch", func() (*tensor.Tensor, error) { return s.Conv2D(in, w, b, c.p) }},
			{"parallel", func() (*tensor.Tensor, error) { return sp.Conv2D(in, w, b, c.p) }},
		} {
			got, err := run.fn()
			if err != nil {
				t.Fatalf("%s/%s: %v", c.name, run.label, err)
			}
			if !tensor.SameShape(got, want) {
				t.Fatalf("%s/%s: shape %v, want %v", c.name, run.label, got.Shape(), want.Shape())
			}
			for i, v := range want.Data() {
				if got.Data()[i] != v {
					t.Fatalf("%s/%s: element %d = %g, want %g (bit-exact)", c.name, run.label, i, got.Data()[i], v)
				}
			}
			// The arena reuses outputs across runs within this loop; each
			// comparison happens before the next run, so reset explicitly.
			s.BeginRun()
			sp.BeginRun()
		}
	}
}

// TestEngineConvNoBias covers the nil-bias path of the GEMM lowering.
func TestEngineConvNoBias(t *testing.T) {
	r := tensor.NewRNG(5)
	p := nn.ConvParams{InChannels: 6, OutChannels: 10, KernelH: 3, KernelW: 3,
		StrideH: 2, StrideW: 2, PadH: 1, PadW: 1, Groups: 2}
	in := tensor.New(6, 13, 11)
	in.FillNormal(r, 1)
	w := tensor.New(p.WeightCount())
	w.FillNormal(r, 0.2)
	want, err := nn.Conv2DDirect(in, w, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nn.Conv2D(in, w, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Data() {
		if got.Data()[i] != v {
			t.Fatalf("element %d = %g, want %g", i, got.Data()[i], v)
		}
	}
}

// TestEngineFullyConnectedMatchesScalar validates the blocked FC kernel
// against the scalar reference (direct mode), bit-exactly, serial and
// parallel.
func TestEngineFullyConnectedMatchesScalar(t *testing.T) {
	r := tensor.NewRNG(17)
	direct := nn.NewScratch()
	direct.SetDirect(true)
	par := nn.NewScratch()
	par.SetWorkers(3)
	for _, c := range []struct{ in, out int }{{9, 4}, {128, 10}, {700, 33}, {9216, 64}} {
		x := tensor.New(c.in)
		x.FillNormal(r, 1)
		w := tensor.New(c.out * c.in)
		w.FillNormal(r, 0.1)
		b := tensor.New(c.out)
		b.FillNormal(r, 0.05)
		want, err := direct.FullyConnected(x, w, b, c.out)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []*nn.Scratch{nil, par} {
			got, err := s.FullyConnected(x, w, b, c.out)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range want.Data() {
				if got.Data()[i] != v {
					t.Fatalf("fc %dx%d: element %d = %g, want %g", c.out, c.in, i, got.Data()[i], v)
				}
			}
		}
		direct.BeginRun()
		par.BeginRun()
	}
}

// lstmFixture builds deterministic LSTM weights.
func lstmFixture(t *testing.T, hidden, in int) *nn.LSTMWeights {
	t.Helper()
	r := tensor.NewRNG(23)
	mk := func(n int) *tensor.Tensor {
		w := tensor.New(n)
		w.FillNormal(r, 0.2)
		return w
	}
	w := &nn.LSTMWeights{
		Hidden: hidden, Input: in,
		Wi: mk(hidden * in), Wf: mk(hidden * in), Wo: mk(hidden * in), Wc: mk(hidden * in),
		Ui: mk(hidden * hidden), Uf: mk(hidden * hidden), Uo: mk(hidden * hidden), Uc: mk(hidden * hidden),
		Bi: mk(hidden), Bf: mk(hidden), Bo: mk(hidden), Bc: mk(hidden),
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEngineLSTMStepMatchesCell validates the scratch LSTM step against the
// reference cell over a multi-step sequence, bit-exactly.
func TestEngineLSTMStepMatchesCell(t *testing.T) {
	const hidden, in, steps = 100, 1, 5
	w := lstmFixture(t, hidden, in)
	r := tensor.NewRNG(31)
	ref := nn.NewLSTMState(hidden)
	eng := nn.LSTMState{H: tensor.New(hidden), C: tensor.New(hidden)}
	s := nn.NewScratch()
	for step := 0; step < steps; step++ {
		x := tensor.New(in)
		x.FillNormal(r, 1)
		var err error
		ref, err = nn.LSTMCell(w, ref, x)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LSTMStep(w, eng, x); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < hidden; i++ {
			if eng.H.Data()[i] != ref.H.Data()[i] || eng.C.Data()[i] != ref.C.Data()[i] {
				t.Fatalf("step %d: state diverged at %d: h %g vs %g, c %g vs %g",
					step, i, eng.H.Data()[i], ref.H.Data()[i], eng.C.Data()[i], ref.C.Data()[i])
			}
		}
	}
}

// TestEngineGRUStepMatchesCell validates the scratch GRU step against the
// reference cell over a multi-step sequence, bit-exactly.
func TestEngineGRUStepMatchesCell(t *testing.T) {
	const hidden, in, steps = 100, 1, 5
	r := tensor.NewRNG(37)
	mk := func(n int) *tensor.Tensor {
		w := tensor.New(n)
		w.FillNormal(r, 0.2)
		return w
	}
	w := &nn.GRUWeights{
		Hidden: hidden, Input: in,
		Wr: mk(hidden * in), Wz: mk(hidden * in), Wh: mk(hidden * in),
		Ur: mk(hidden * hidden), Uz: mk(hidden * hidden), Uh: mk(hidden * hidden),
		Br: mk(hidden), Bz: mk(hidden), Bh: mk(hidden),
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	ref := tensor.New(hidden)
	eng := tensor.New(hidden)
	s := nn.NewScratch()
	for step := 0; step < steps; step++ {
		x := tensor.New(in)
		x.FillNormal(r, 1)
		next, err := nn.GRUCell(w, ref, x)
		if err != nil {
			t.Fatal(err)
		}
		ref = next
		if err := s.GRUStep(w, eng, x); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < hidden; i++ {
			if eng.Data()[i] != ref.Data()[i] {
				t.Fatalf("step %d: hidden state diverged at %d: %g vs %g", step, i, eng.Data()[i], ref.Data()[i])
			}
		}
	}
}

// TestDenseValidation covers the hardened argument checks of Softmax,
// MatVec and FullyConnected.
func TestDenseValidation(t *testing.T) {
	if _, err := nn.Softmax(nil); err == nil {
		t.Error("softmax(nil) must error")
	}
	if _, err := nn.MatVec(nil, tensor.New(3), 3, 3); err == nil {
		t.Error("matvec with nil matrix must error")
	}
	if _, err := nn.MatVec(tensor.New(9), nil, 3, 3); err == nil {
		t.Error("matvec with nil vector must error")
	}
	if _, err := nn.MatVec(tensor.New(9), tensor.New(3), 0, 3); err == nil {
		t.Error("matvec with zero rows must error")
	}
	if _, err := nn.FullyConnected(nil, tensor.New(9), nil, 3); err == nil {
		t.Error("fc with nil input must error")
	}
	if _, err := nn.FullyConnected(tensor.New(3), nil, nil, 3); err == nil {
		t.Error("fc with nil weights must error")
	}
}

// Benchmarks for the compute engine's hot kernels.

func BenchmarkConv(b *testing.B) {
	// AlexNet conv2: 96 -> 256 channels, 5x5, pad 2, 2 groups, 27x27 output.
	p := nn.ConvParams{InChannels: 96, OutChannels: 256, KernelH: 5, KernelW: 5,
		StrideH: 1, StrideW: 1, PadH: 2, PadW: 2, Groups: 2}
	r := tensor.NewRNG(1)
	in := tensor.New(96, 27, 27)
	in.FillNormal(r, 1)
	w := tensor.New(p.WeightCount())
	w.FillNormal(r, 0.1)
	bias := tensor.New(256)
	for _, bc := range []struct {
		name string
		s    *nn.Scratch
	}{
		{"direct", func() *nn.Scratch { s := nn.NewScratch(); s.SetDirect(true); return s }()},
		{"gemm", nn.NewScratch()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.s.BeginRun()
				if _, err := bc.s.Conv2D(in, w, bias, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDense(b *testing.B) {
	// AlexNet fc6 geometry: 9216 -> 4096.
	const in, out = 9216, 4096
	r := tensor.NewRNG(2)
	x := tensor.New(in)
	x.FillNormal(r, 1)
	w := tensor.New(out * in)
	w.FillNormal(r, 0.02)
	bias := tensor.New(out)
	for _, bc := range []struct {
		name string
		s    *nn.Scratch
	}{
		{"scalar", func() *nn.Scratch { s := nn.NewScratch(); s.SetDirect(true); return s }()},
		{"blocked", nn.NewScratch()},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bc.s.BeginRun()
				if _, err := bc.s.FullyConnected(x, w, bias, out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLSTMCell(b *testing.B) {
	const hidden, in = 100, 1
	r := tensor.NewRNG(3)
	mk := func(n int) *tensor.Tensor {
		w := tensor.New(n)
		w.FillNormal(r, 0.2)
		return w
	}
	w := &nn.LSTMWeights{
		Hidden: hidden, Input: in,
		Wi: mk(hidden * in), Wf: mk(hidden * in), Wo: mk(hidden * in), Wc: mk(hidden * in),
		Ui: mk(hidden * hidden), Uf: mk(hidden * hidden), Uo: mk(hidden * hidden), Uc: mk(hidden * hidden),
		Bi: mk(hidden), Bf: mk(hidden), Bo: mk(hidden), Bc: mk(hidden),
	}
	x := tensor.New(in)
	x.Fill(0.5)
	b.Run("cell", func(b *testing.B) {
		b.ReportAllocs()
		st := nn.NewLSTMState(hidden)
		for i := 0; i < b.N; i++ {
			var err error
			st, err = nn.LSTMCell(w, st, x)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("step", func(b *testing.B) {
		b.ReportAllocs()
		s := nn.NewScratch()
		st := nn.LSTMState{H: tensor.New(hidden), C: tensor.New(hidden)}
		for i := 0; i < b.N; i++ {
			if err := s.LSTMStep(w, st, x); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkClassifyAlexNet(b *testing.B) {
	bm, err := tango.LoadBenchmark("AlexNet")
	if err != nil {
		b.Fatal(err)
	}
	img, _, err := bm.SampleImage(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Classify(img); err != nil {
			b.Fatal(err)
		}
	}
}
