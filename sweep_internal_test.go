package tango

import (
	"reflect"
	"testing"

	"tango/internal/target"
)

// TestSweepParallelDeterminismColdStore is the white-box counterpart of the
// external sweep tests: each sweep runs against its own fresh store, so the
// parallel fan-out genuinely recomputes every cell concurrently instead of
// reading the serial run's results from the process-wide shared store.
func TestSweepParallelDeterminismColdStore(t *testing.T) {
	cfg := SweepConfig{
		Networks:     []string{"GRU", "CifarNet"},
		Targets:      []string{"gp102", "tx1", "pynq"},
		L1SizesKB:    []int{0, 64},
		FastSampling: true,
	}

	prev := sweepStore
	defer func() { sweepStore = prev }()

	sweepStore = func() *target.Store { return target.NewStore() }
	serial, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sweepStore = func() *target.Store { return target.NewStore() }
	cfg.Parallelism = 8
	parallel, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("cold parallel sweep differs from cold serial sweep:\n%+v\nvs\n%+v",
			serial.Records, parallel.Records)
	}
}
