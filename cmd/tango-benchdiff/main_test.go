package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: tango
BenchmarkClassifyAlexNetBatch8      	       2	 700540016 ns/op	        11.42 images/sec	47372664 B/op	      47 allocs/op
BenchmarkClassifyCifarNetBatch8-4   	     100	  14200000 ns/op
BenchmarkGemmNN 	       3	  46702190 ns/op	        19.18 GMAC/s	       0 B/op	       0 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	snap, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkClassifyAlexNetBatch8":  700540016,
		"BenchmarkClassifyCifarNetBatch8": 14200000, // -4 proc suffix stripped
		"BenchmarkGemmNN":                 46702190,
	}
	if len(snap.Benchmarks) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(snap.Benchmarks), len(want), snap.Benchmarks)
	}
	for name, ns := range want {
		got, ok := snap.Benchmarks[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if got.NsPerOp != ns {
			t.Fatalf("%s: %v ns/op, want %v", name, got.NsPerOp, ns)
		}
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Entry{
		"BenchmarkA":    {NsPerOp: 100},
		"BenchmarkB":    {NsPerOp: 100},
		"BenchmarkGone": {NsPerOp: 50},
	}}
	cur := &Snapshot{Benchmarks: map[string]Entry{
		"BenchmarkA":   {NsPerOp: 130}, // +30% -> regression at 25% threshold
		"BenchmarkB":   {NsPerOp: 110}, // +10% -> fine
		"BenchmarkNew": {NsPerOp: 10},
	}}
	var buf bytes.Buffer
	n := compare(&buf, base, cur, 0.25)
	if n != 1 {
		t.Fatalf("found %d regressions, want 1\n%s", n, buf.String())
	}
	out := buf.String()
	for _, frag := range []string{
		"::warning title=benchmark regression::BenchmarkA",
		"::warning title=benchmark missing::BenchmarkGone",
		"new",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestCompareClean(t *testing.T) {
	base := &Snapshot{Benchmarks: map[string]Entry{"BenchmarkA": {NsPerOp: 100}}}
	cur := &Snapshot{Benchmarks: map[string]Entry{"BenchmarkA": {NsPerOp: 90}}}
	var buf bytes.Buffer
	if n := compare(&buf, base, cur, 0.25); n != 0 {
		t.Fatalf("found %d regressions, want 0", n)
	}
	if !strings.Contains(buf.String(), "no regressions beyond threshold") {
		t.Fatalf("missing clean message:\n%s", buf.String())
	}
}
