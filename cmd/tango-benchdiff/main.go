// Command tango-benchdiff turns `go test -bench` output into a JSON
// snapshot and compares it against a committed baseline, warning (fail-soft)
// when a benchmark regresses beyond a threshold.  The CI bench-regression
// job pipes the benchmark run through it:
//
//	go test -run xxx -bench '...' -benchtime 3x ./... | \
//	    tango-benchdiff -baseline BENCH_pr3.json -out bench_current.json
//
// Exit code is 0 even when regressions are found (CI runners are noisy
// shared machines; the warnings annotate the run instead of breaking it)
// unless -strict is set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Snapshot is the on-disk benchmark baseline format.
type Snapshot struct {
	// Schema versions the file layout.
	Schema int `json:"schema"`
	// Note documents how the baseline was produced.
	Note string `json:"note,omitempty"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to its
	// measured cost.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// Entry is one benchmark measurement.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
}

// benchLine matches `BenchmarkName[-procs]   iters   12345 ns/op   ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

func main() {
	baselinePath := flag.String("baseline", "", "baseline snapshot JSON to compare against")
	outPath := flag.String("out", "", "write the current run's snapshot JSON here")
	threshold := flag.Float64("threshold", 0.25, "relative slowdown that triggers a warning (0.25 = 25%)")
	strict := flag.Bool("strict", false, "exit non-zero when a regression exceeds the threshold")
	note := flag.String("note", "", "note stored in the emitted snapshot")
	flag.Parse()

	cur, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tango-benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(cur.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "tango-benchdiff: no benchmark lines found on stdin")
		os.Exit(2)
	}
	cur.Note = *note

	if *outPath != "" {
		if err := writeSnapshot(*outPath, cur); err != nil {
			fmt.Fprintf(os.Stderr, "tango-benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(cur.Benchmarks), *outPath)
	}

	if *baselinePath == "" {
		return
	}
	base, err := readSnapshot(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tango-benchdiff: %v\n", err)
		os.Exit(2)
	}
	regressions := compare(os.Stdout, base, cur, *threshold)
	if regressions > 0 && *strict {
		os.Exit(1)
	}
}

// parseBench extracts benchmark measurements from `go test -bench` output.
func parseBench(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{Schema: 1, Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		snap.Benchmarks[m[1]] = Entry{NsPerOp: ns}
	}
	return snap, sc.Err()
}

// compare prints a per-benchmark delta table and GitHub warning annotations
// for slowdowns beyond threshold; it returns the regression count.
func compare(w io.Writer, base, cur *Snapshot, threshold float64) int {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "benchmark", "baseline", "current", "delta")
	for _, name := range names {
		c := cur.Benchmarks[name]
		b, ok := base.Benchmarks[name]
		if !ok || b.NsPerOp <= 0 {
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s\n", name, "-", c.NsPerOp, "new")
			continue
		}
		delta := c.NsPerOp/b.NsPerOp - 1
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%%\n", name, b.NsPerOp, c.NsPerOp, delta*100)
		if delta > threshold {
			regressions++
			fmt.Fprintf(w, "::warning title=benchmark regression::%s is %.1f%% slower than the committed baseline (%.0f -> %.0f ns/op)\n",
				name, delta*100, b.NsPerOp, c.NsPerOp)
		}
	}
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Fprintf(w, "::warning title=benchmark missing::%s is in the baseline but was not measured\n", name)
		}
	}
	if regressions == 0 {
		fmt.Fprintln(w, "no regressions beyond threshold")
	}
	return regressions
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &snap, nil
}

func writeSnapshot(path string, snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
