// Command tango-report runs the complete experiment matrix — every table and
// figure of the paper's evaluation — and writes the results to stdout or to a
// directory of per-experiment files.  Simulation results are cached across
// experiments, so each (network, configuration) pair is simulated once.
//
// Usage:
//
//	tango-report                      # full report to stdout
//	tango-report -out results/        # one .txt and .csv file per experiment
//	tango-report -fast -networks GRU,LSTM,CifarNet
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tango"
)

func main() {
	var (
		out      = flag.String("out", "", "directory to write per-experiment .txt/.csv files (default: stdout only)")
		networks = flag.String("networks", "", "comma-separated benchmark filter")
		fast     = flag.Bool("fast", false, "use coarse simulation sampling")
		parallel = flag.Int("parallel", 1, "worker goroutines for the simulation matrix (0 = one per CPU)")
	)
	flag.Parse()

	var opts []tango.ExperimentOption
	if *networks != "" {
		var names []string
		for _, n := range strings.Split(*networks, ",") {
			if trimmed := strings.TrimSpace(n); trimmed != "" {
				names = append(names, trimmed)
			}
		}
		opts = append(opts, tango.WithNetworks(names...))
	}
	if *fast {
		opts = append(opts, tango.WithFastExperimentSampling())
	}
	if *parallel != 1 {
		opts = append(opts, tango.WithExperimentParallelism(*parallel))
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	session := tango.NewExperimentSession(opts...)
	start := time.Now()
	session.Prewarm()
	for _, e := range tango.Experiments() {
		expStart := time.Now()
		table, err := session.Run(e.ID)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Printf("==== %s: %s (%.1fs) ====\n", e.ID, e.Title, time.Since(expStart).Seconds())
		fmt.Print(table.String())
		fmt.Println()
		if *out != "" {
			base := filepath.Join(*out, e.ID)
			if err := os.WriteFile(base+".txt", []byte(table.String()), 0o644); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(base+".csv", []byte(table.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("completed %d experiments in %.1fs\n", len(tango.Experiments()), time.Since(start).Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tango-report:", err)
	os.Exit(1)
}
