// Command tango-report runs the complete experiment matrix — every table and
// figure of the paper's evaluation — and writes the results to stdout or to a
// directory of per-experiment files.  Layer traces and simulation runs are
// shared across experiments through the characterization pipeline's store, so
// each (network, target, configuration) cell is computed once.
//
// With -targets the command instead runs a multi-device characterization
// sweep over the registered accelerator targets and emits the dataset.
//
// Usage:
//
//	tango-report                      # full report to stdout
//	tango-report -out results/        # one .txt and .csv file per experiment
//	tango-report -fast -networks GRU,LSTM,CifarNet
//	tango-report -format json         # tables as JSON
//	tango-report -targets gp102,tx1,pynq -fast -format csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tango"
	"tango/internal/cli"
)

func main() {
	var (
		out        = flag.String("out", "", "directory to write per-experiment .txt/.csv files (default: stdout only)")
		networks   = flag.String("networks", "", "comma-separated benchmark filter")
		targets    = flag.String("targets", "", "comma-separated accelerator targets: run a sweep instead of the report")
		l1Sizes    = flag.String("l1", "", "sweep mode: comma-separated L1D sizes in KB (0 = bypass)")
		schedulers = flag.String("schedulers", "", "sweep mode: comma-separated warp schedulers (gto, lrr, tlv)")
		fast       = flag.Bool("fast", false, "use coarse simulation sampling")
		parallel   = flag.Int("parallel", 1, "worker goroutines for the simulation matrix (0 = one per CPU)")
		format     = flag.String("format", "table", "stdout format: table, csv or json")
	)
	flag.Parse()

	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (want table, csv or json)", *format))
	}

	names := cli.SplitList(*networks)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	if *targets != "" {
		runSweep(names, cli.SplitList(*targets), *l1Sizes, *schedulers, *fast, *parallel, *format, *out)
		return
	}

	var opts []tango.ExperimentOption
	if len(names) > 0 {
		opts = append(opts, tango.WithNetworks(names...))
	}
	if *fast {
		opts = append(opts, tango.WithFastExperimentSampling())
	}
	if *parallel != 1 {
		opts = append(opts, tango.WithExperimentParallelism(*parallel))
	}

	session := tango.NewExperimentSession(opts...)
	start := time.Now()
	session.Prewarm()
	for _, e := range tango.Experiments() {
		expStart := time.Now()
		table, err := session.Run(e.ID)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		switch *format {
		case "csv":
			fmt.Print(table.CSV())
		case "json":
			enc, err := table.JSON()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(enc))
		default:
			fmt.Printf("==== %s: %s (%.1fs) ====\n", e.ID, e.Title, time.Since(expStart).Seconds())
			fmt.Print(table.String())
			fmt.Println()
		}
		if *out != "" {
			base := filepath.Join(*out, e.ID)
			if err := os.WriteFile(base+".txt", []byte(table.String()), 0o644); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(base+".csv", []byte(table.CSV()), 0o644); err != nil {
				fatal(err)
			}
		}
	}
	if *format == "table" {
		fmt.Printf("completed %d experiments in %.1fs\n", len(tango.Experiments()), time.Since(start).Seconds())
	}
}

// runSweep executes the multi-device sweep mode and emits the dataset.
func runSweep(names, targets []string, l1Sizes, schedulers string, fast bool, parallel int, format, out string) {
	l1kb, err := cli.ParseInts(l1Sizes)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	ds, err := tango.Sweep(tango.SweepConfig{
		Networks:     names,
		Targets:      targets,
		L1SizesKB:    l1kb,
		Schedulers:   cli.SplitList(schedulers),
		FastSampling: fast,
		Parallelism:  cli.Workers(parallel),
	})
	if err != nil {
		fatal(err)
	}
	table := ds.Table("sweep", fmt.Sprintf("Characterization sweep over %s", strings.Join(targets, ", ")))
	switch format {
	case "csv":
		fmt.Print(ds.CSV())
	case "json":
		enc, err := ds.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(enc))
	default:
		fmt.Print(table.String())
		fmt.Printf("swept %d cells in %.1fs\n", ds.Len(), time.Since(start).Seconds())
	}
	if out != "" {
		base := filepath.Join(out, "sweep")
		enc, err := ds.JSON()
		if err != nil {
			fatal(err)
		}
		for suffix, data := range map[string][]byte{
			".txt":  []byte(table.String()),
			".csv":  []byte(ds.CSV()),
			".json": enc,
		} {
			if err := os.WriteFile(base+suffix, data, 0o644); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tango-report:", err)
	os.Exit(1)
}
