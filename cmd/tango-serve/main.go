// Command tango-serve is the network-facing inference server of the suite:
// it loads one or more benchmarks, mounts the dynamic-batching tango.Server
// over HTTP (stdlib net/http only), and serves until SIGINT/SIGTERM, then
// drains gracefully.
//
//	tango-serve -addr :8080 -benchmarks CifarNet,LSTM -max-batch 16 -max-delay-us 1000
//
// Endpoints:
//
//	POST /v1/classify  {"benchmark":"CifarNet","image":[...]} or {"benchmark":...,"seed":N}
//	POST /v1/forecast  {"benchmark":"LSTM","history":[...]}   or {"benchmark":...,"seed":N}
//	GET  /healthz
//	GET  /metrics
//
// Concurrent requests to the same benchmark are coalesced into batched
// engine runs (up to -max-batch per batch, waiting at most -max-delay-us for
// a batch to fill); responses are bit-identical to single-sample Classify /
// Forecast.  A full queue (-queue-depth) rejects with HTTP 429 instead of
// queuing unboundedly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tango"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	benchmarks := flag.String("benchmarks", "CifarNet", "comma-separated benchmarks to serve")
	maxBatch := flag.Int("max-batch", 16, "max requests coalesced into one engine batch")
	maxDelayUS := flag.Int("max-delay-us", 1000, "max microseconds the oldest queued request waits for its batch to fill")
	queueDepth := flag.Int("queue-depth", 256, "per-benchmark request queue capacity (full queue rejects with 429)")
	parallel := flag.Int("parallel", 0, "engine workers per batch run (0 = single worker, -1 = one per CPU)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
	flag.Parse()

	names := splitBenchmarks(*benchmarks)
	if len(names) == 0 {
		log.Fatal("tango-serve: -benchmarks must name at least one benchmark")
	}

	log.Printf("loading %s ...", strings.Join(names, ", "))
	srv, err := tango.NewServer(names, tango.ServerConfig{
		MaxBatch:    *maxBatch,
		MaxDelay:    time.Duration(*maxDelayUS) * time.Microsecond,
		QueueDepth:  *queueDepth,
		Parallelism: *parallel,
	})
	if err != nil {
		log.Fatalf("tango-serve: %v", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("serving %s on %s (max-batch %d, max-delay %dus, queue-depth %d)",
		strings.Join(names, ", "), *addr, *maxBatch, *maxDelayUS, *queueDepth)

	select {
	case err := <-errCh:
		log.Fatalf("tango-serve: %v", err)
	case <-ctx.Done():
	}
	// Restore default signal disposition: a second SIGINT/SIGTERM during
	// the drain kills the process immediately instead of being swallowed.
	stop()

	log.Print("shutting down: draining in-flight requests ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("tango-serve: http shutdown: %v", err)
	}
	// The same -drain-timeout window bounds the batcher drain: a queue
	// still full when it expires is abandoned rather than stalling the
	// process past an orchestrator's kill-grace period.
	drained := make(chan struct{})
	go func() {
		srv.Close()
		close(drained)
	}()
	select {
	case <-drained:
	case <-shutdownCtx.Done():
		log.Print("tango-serve: drain timeout expired with requests still queued")
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tango-serve: %v", err)
	}

	stats := srv.Stats()
	log.Printf("served %d requests in %d batches (mean batch %.2f, %d rejected)",
		stats.Completed, stats.Batches, stats.MeanBatchSize, stats.RejectedQueueFull)
	fmt.Println("bye")
}

// splitBenchmarks parses the -benchmarks list.
func splitBenchmarks(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
