// Command tango-serve is the network-facing inference server of the suite:
// it loads one or more benchmarks, mounts the dynamic-batching tango.Server
// over HTTP (stdlib net/http only), and serves until SIGINT/SIGTERM, then
// drains gracefully.
//
//	tango-serve -addr :8080 -benchmarks CifarNet,LSTM -max-batch 16 -max-delay-us 1000
//
// Endpoints:
//
//	POST /v1/classify  {"benchmark":"CifarNet","image":[...]} or {"benchmark":...,"seed":N}
//	POST /v1/forecast  {"benchmark":"LSTM","history":[...]}   or {"benchmark":...,"seed":N}
//	GET  /v1/stats     JSON stats snapshot
//	GET  /healthz      tri-state health
//	GET  /metrics      Prometheus text exposition
//
// Concurrent requests to the same benchmark are coalesced into batched
// engine runs (up to -max-batch per batch, waiting at most -max-delay-us for
// a batch to fill); responses are bit-identical to single-sample Classify /
// Forecast on the default numerics tier.  -fastmath / -int8 serve the
// fast-numerics tiers instead: top-1 classes are preserved but outputs agree
// only within a tolerance.  A full queue (-queue-depth) rejects with HTTP
// 429 instead of queuing unboundedly.
//
// -slo-ms sets a per-request p99 latency target and turns the fixed batch
// window into an adaptive one (grown under queue pressure, shrunk when the
// observed p99 nears the SLO).  -model-budget-mb bounds total resident
// engine bytes, loading models on demand and evicting idle ones LRU-first.
// -debug-addr starts a second listener exposing /debug/pprof/* (kept off
// the serving port so profiling is never publicly reachable by default).
//
// Chaos testing: -faults/-fault-seed (or the TANGO_FAULTS/TANGO_FAULT_SEED
// environment variables) enable the deterministic fault-injection plan, and
// every exit path emits one structured JSON shutdown record on stdout so
// harnesses can assert how the process died and what it drained.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tango"
	"tango/internal/resilience"
)

// shutdownRecord is the structured line emitted on stdout by every exit
// path: orchestrators and chaos harnesses parse it instead of scraping
// free-form logs.  Drained counts the requests completed between the
// shutdown trigger and process exit; InFlight is what was still unresolved
// at exit (nonzero only when the drain timeout expired).
type shutdownRecord struct {
	Event    string  `json:"event"`
	Reason   string  `json:"reason"`
	ExitCode int     `json:"exit_code"`
	UptimeS  float64 `json:"uptime_s"`

	Completed uint64 `json:"completed"`
	Drained   uint64 `json:"drained"`
	InFlight  int64  `json:"in_flight"`
	Rejected  uint64 `json:"rejected"`
	Batches   uint64 `json:"batches"`

	// Models holds the per-benchmark breakdown, keyed by name.  Models that
	// saw no traffic at all are suppressed rather than emitted as all-zero
	// rows: a ten-model server that only served one benchmark reports one
	// row, not nine rows of zeros with empty histograms.
	Models map[string]modelRecord `json:"models,omitempty"`
}

// modelRecord is one served benchmark's slice of the shutdown record.
type modelRecord struct {
	Submitted     uint64   `json:"submitted"`
	Completed     uint64   `json:"completed"`
	Batches       uint64   `json:"batches"`
	MeanBatchSize float64  `json:"mean_batch_size"`
	BatchSizeHist []uint64 `json:"batch_size_hist,omitempty"`
	Rejected      uint64   `json:"rejected,omitempty"`
	Shed          uint64   `json:"shed,omitempty"`
	Evictions     uint64   `json:"evictions,omitempty"`
}

// modelRows builds the per-benchmark breakdown, suppressing rows for models
// that never saw a request (submitted, rejected and shed all zero).
func modelRows(st tango.ServerStats) map[string]modelRecord {
	rows := make(map[string]modelRecord)
	for name, b := range st.Benchmarks {
		shed := b.ShedLoad + b.ShedBreaker
		if b.Submitted == 0 && b.RejectedQueueFull == 0 && shed == 0 {
			continue
		}
		rows[name] = modelRecord{
			Submitted:     b.Submitted,
			Completed:     b.Completed,
			Batches:       b.Batches,
			MeanBatchSize: b.MeanBatchSize,
			BatchSizeHist: b.BatchSizeHist,
			Rejected:      b.RejectedQueueFull,
			Shed:          shed,
			Evictions:     b.Evictions,
		}
	}
	if len(rows) == 0 {
		return nil
	}
	return rows
}

// exit emits the shutdown record and terminates with its exit code.  srv
// and atTrigger may be nil (startup failures die before a server exists).
func exit(rec shutdownRecord, srv *tango.Server, atTrigger *tango.ServerStats, start time.Time) {
	rec.Event = "shutdown"
	rec.UptimeS = time.Since(start).Seconds()
	if srv != nil {
		st := srv.Stats()
		rec.Completed = st.Completed
		rec.InFlight = st.InFlight
		rec.Rejected = st.RejectedQueueFull + st.Shed
		rec.Batches = st.Batches
		rec.Models = modelRows(st)
		if atTrigger != nil {
			rec.Drained = st.Completed - atTrigger.Completed
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		log.Printf("tango-serve: encoding shutdown record: %v", err)
	} else {
		fmt.Println(string(line))
	}
	if rec.ExitCode == 0 {
		fmt.Println("bye")
	}
	os.Exit(rec.ExitCode)
}

func main() {
	start := time.Now()
	addr := flag.String("addr", ":8080", "listen address")
	benchmarks := flag.String("benchmarks", "CifarNet", "comma-separated benchmarks to serve")
	maxBatch := flag.Int("max-batch", 16, "max requests coalesced into one engine batch")
	maxDelayUS := flag.Int("max-delay-us", 1000, "max microseconds the oldest queued request waits for its batch to fill")
	queueDepth := flag.Int("queue-depth", 256, "per-benchmark request queue capacity (full queue rejects with 429)")
	parallel := flag.Int("parallel", 0, "engine workers per batch run (0 = single worker, -1 = one per CPU)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight requests on shutdown")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline (queue wait + compute); 0 = none")
	faults := flag.String("faults", "", "fault-injection spec, e.g. \"serve.batch.run=error:0.05\" (overrides "+resilience.EnvSpec+")")
	faultSeed := flag.Uint64("fault-seed", 1, "seed for the deterministic fault-injection plan")
	fastmath := flag.Bool("fastmath", false, "serve with the fast-numerics tier (packed weights, FMA/AVX-512 kernels; top-1 preserved, not bit-exact)")
	int8 := flag.Bool("int8", false, "serve with the int8 quantized tier")
	sloMS := flag.Float64("slo-ms", 0, "per-request p99 latency SLO in milliseconds; >0 enables adaptive batching (window tuned between 0 and min(max-delay, SLO/2))")
	modelBudgetMB := flag.Int64("model-budget-mb", 0, "resident model-engine byte budget in MiB; >0 loads models on demand and evicts idle ones LRU-first")
	onDemand := flag.Bool("on-demand", false, "defer each model's engine load to its first request instead of startup")
	debugAddr := flag.String("debug-addr", "", "optional second listen address exposing /debug/pprof/* (empty = disabled)")
	flag.Parse()

	fail := func(format string, args ...any) {
		log.Printf("tango-serve: "+format, args...)
		exit(shutdownRecord{Reason: "startup-error", ExitCode: 1}, nil, nil, start)
	}

	// A -faults flag beats the environment; either way the active plan is
	// logged so a chaos run is attributable from the server's own output.
	if *faults != "" {
		if err := resilience.Enable(*faults, *faultSeed); err != nil {
			fail("%v", err)
		}
	} else if _, err := resilience.EnableFromEnv(); err != nil {
		fail("%v", err)
	}
	if resilience.Enabled() {
		log.Printf("fault injection active: %s", resilience.Spec())
	}

	names := splitBenchmarks(*benchmarks)
	if len(names) == 0 {
		fail("-benchmarks must name at least one benchmark")
	}
	numerics := ""
	switch {
	case *fastmath && *int8:
		fail("-fastmath and -int8 are mutually exclusive")
	case *fastmath:
		numerics = "fast"
	case *int8:
		numerics = "int8"
	}

	var serveOpts []tango.ServeOption
	if *sloMS > 0 {
		serveOpts = append(serveOpts, tango.WithSLO(time.Duration(*sloMS*float64(time.Millisecond))))
	}
	if *modelBudgetMB > 0 {
		serveOpts = append(serveOpts, tango.WithModelBudget(*modelBudgetMB<<20))
	}
	if *onDemand {
		serveOpts = append(serveOpts, tango.WithOnDemandLoading())
	}

	log.Printf("loading %s ...", strings.Join(names, ", "))
	srv, err := tango.NewServer(names, tango.ServerConfig{
		MaxBatch:       *maxBatch,
		MaxDelay:       time.Duration(*maxDelayUS) * time.Microsecond,
		QueueDepth:     *queueDepth,
		Parallelism:    *parallel,
		RequestTimeout: *requestTimeout,
		Numerics:       numerics,
	}, serveOpts...)
	if err != nil {
		fail("%v", err)
	}

	// The pprof surface rides the stdlib DefaultServeMux (registered by the
	// net/http/pprof import) on its own listener, so profiling is opt-in
	// and never exposed on the serving address.
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fail("debug listener: %v", err)
		}
		go func() {
			dsrv := &http.Server{Handler: http.DefaultServeMux, ReadHeaderTimeout: 10 * time.Second}
			if err := dsrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("tango-serve: debug listener: %v", err)
			}
		}()
		log.Printf("pprof on %s/debug/pprof/", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail("%v", err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	tier := numerics
	if tier == "" {
		tier = "reference"
	}
	batching := fmt.Sprintf("max-delay %dus", *maxDelayUS)
	if *sloMS > 0 {
		batching = fmt.Sprintf("adaptive, p99 SLO %gms", *sloMS)
	}
	log.Printf("serving %s on %s (max-batch %d, %s, queue-depth %d, numerics %s)",
		strings.Join(names, ", "), ln.Addr(), *maxBatch, batching, *queueDepth, tier)

	select {
	case err := <-errCh:
		atFailure := srv.Stats()
		log.Printf("tango-serve: %v", err)
		exit(shutdownRecord{Reason: "listener-error", ExitCode: 1}, srv, &atFailure, start)
	case <-ctx.Done():
	}
	// Restore default signal disposition: a second SIGINT/SIGTERM during
	// the drain kills the process immediately instead of being swallowed.
	stop()
	atSignal := srv.Stats()

	log.Print("shutting down: draining in-flight requests ...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("tango-serve: http shutdown: %v", err)
	}
	// The same -drain-timeout window bounds the batcher drain: a queue
	// still full when it expires is abandoned rather than stalling the
	// process past an orchestrator's kill-grace period.
	reason := "signal"
	drained := make(chan struct{})
	go func() {
		srv.Close()
		close(drained)
	}()
	select {
	case <-drained:
	case <-shutdownCtx.Done():
		reason = "drain-timeout"
		log.Print("tango-serve: drain timeout expired with requests still queued")
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("tango-serve: %v", err)
	}

	stats := srv.Stats()
	log.Printf("served %d requests in %d batches (mean batch %.2f, %d rejected)",
		stats.Completed, stats.Batches, stats.MeanBatchSize, stats.RejectedQueueFull)
	exit(shutdownRecord{Reason: reason, ExitCode: 0}, srv, &atSignal, start)
}

// splitBenchmarks parses the -benchmarks list.
func splitBenchmarks(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
