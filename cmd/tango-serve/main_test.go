package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// syncBuffer collects the server's interleaved stdout+stderr under a lock:
// the process writes both streams sequentially, so one combined buffer
// preserves the ordering the drain test asserts on.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestGracefulShutdownOrdering runs the real binary end to end: serve a
// request, send SIGTERM, and assert the exit path is drain-ordered — the
// draining log line, then the structured JSON shutdown record (with the
// drained request counted), then "bye", then exit code 0.
func TestGracefulShutdownOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary; skipped in -short")
	}
	if runtime.GOOS == "windows" {
		t.Skip("SIGTERM semantics are POSIX-only")
	}

	bin := filepath.Join(t.TempDir(), "tango-serve")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	var out syncBuffer
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-benchmarks", "LSTM")
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The listener picks its port; read the bound address off the serving
	// log line.
	addrRe := regexp.MustCompile(`serving .* on (\S+) \(`)
	var base string
	for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); time.Sleep(50 * time.Millisecond) {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = "http://" + m[1]
			break
		}
	}
	if base == "" {
		t.Fatalf("server never logged its address:\n%s", out.String())
	}
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(50 * time.Millisecond) {
		if resp, err := http.Get(base + "/healthz"); err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never came up:\n%s", out.String())
		}
	}

	// One completed request before the signal so the drain accounting has
	// something to count.
	resp, err := http.Post(base+"/v1/forecast", "application/json",
		strings.NewReader(`{"benchmark":"LSTM","seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status %d", resp.StatusCode)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("exit after SIGTERM: %v\n%s", err, out.String())
	}

	log := out.String()
	drainIdx := strings.Index(log, "draining in-flight requests")
	recIdx := strings.Index(log, `"event":"shutdown"`)
	byeIdx := strings.Index(log, "bye")
	if drainIdx < 0 || recIdx < 0 || byeIdx < 0 {
		t.Fatalf("missing drain/record/bye markers:\n%s", log)
	}
	if !(drainIdx < recIdx && recIdx < byeIdx) {
		t.Fatalf("exit path out of order (drain@%d record@%d bye@%d):\n%s",
			drainIdx, recIdx, byeIdx, log)
	}

	var recLine string
	for _, line := range strings.Split(log, "\n") {
		if strings.Contains(line, `"event":"shutdown"`) {
			recLine = line
			break
		}
	}
	var rec struct {
		Event     string  `json:"event"`
		Reason    string  `json:"reason"`
		ExitCode  int     `json:"exit_code"`
		UptimeS   float64 `json:"uptime_s"`
		Completed uint64  `json:"completed"`
		InFlight  int64   `json:"in_flight"`
	}
	if err := json.Unmarshal([]byte(recLine), &rec); err != nil {
		t.Fatalf("shutdown record is not valid JSON: %v\n%q", err, recLine)
	}
	if rec.Event != "shutdown" || rec.Reason != "signal" || rec.ExitCode != 0 {
		t.Fatalf("shutdown record = %+v, want event=shutdown reason=signal exit 0", rec)
	}
	if rec.Completed < 1 || rec.InFlight != 0 || rec.UptimeS <= 0 {
		t.Fatalf("shutdown record accounting = %+v", rec)
	}
}
