// Command tango-run executes one benchmark of the suite, either natively
// (the pure-Go equivalent of the CUDA kernels) or on the GPU architecture
// simulator, and prints a summary.
//
// Usage:
//
//	tango-run -benchmark CifarNet                 # native inference
//	tango-run -benchmark AlexNet -simulate        # simulate on the GP102 model
//	tango-run -benchmark AlexNet -simulate -device TX1 -l1kb 128 -scheduler lrr
//	tango-run -list                               # list benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tango"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list the available benchmarks and exit")
		name      = flag.String("benchmark", "CifarNet", "benchmark to run")
		simulate  = flag.Bool("simulate", false, "run on the architecture simulator instead of natively")
		deviceStr = flag.String("device", "GP102", "simulated device: GP102, GK210 or TX1")
		l1kb      = flag.Int("l1kb", -1, "simulated L1D size in KB (0 bypasses the L1, -1 keeps the device default)")
		scheduler = flag.String("scheduler", "gto", "warp scheduler: gto, lrr or tlv")
		parallel  = flag.Int("parallel", 1, "worker goroutines for native inference or kernel simulation (0 = one per CPU)")
		batch     = flag.Int("batch", 1, "native inference batch size: run N samples through the engine in one batched pass")
		fast      = flag.Bool("fast", false, "use coarse simulation sampling")
		fastmath  = flag.Bool("fastmath", false, "native inference: fast-numerics tier (packed weights, FMA/AVX-512 kernels; top-1 preserved, not bit-exact)")
		int8      = flag.Bool("int8", false, "native inference: int8 quantized tier (implies the fast tier's accuracy contract)")
		seed      = flag.Uint64("seed", 1, "seed for the synthetic sample input")
		verbose   = flag.Bool("v", false, "print per-layer detail")
	)
	flag.Parse()

	if *list {
		fmt.Println("Benchmarks in the Tango suite:")
		for _, n := range tango.Benchmarks() {
			fmt.Printf("  %s\n", n)
		}
		return
	}

	b, err := tango.LoadBenchmark(*name)
	if err != nil {
		fatal(err)
	}
	desc, err := b.Describe()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s (%s): %d layers, %d parameters, input %v\n",
		desc.Name, desc.Kind, desc.Layers, desc.Parameters, desc.InputShape)

	if *simulate {
		if *batch > 1 {
			fatal(fmt.Errorf("-batch applies to native inference only; drop -simulate to run a batched pass"))
		}
		if *fastmath || *int8 {
			fatal(fmt.Errorf("-fastmath/-int8 apply to native inference only; the simulator models reference numerics"))
		}
		runSimulated(b, *deviceStr, *l1kb, *scheduler, *parallel, *fast, *verbose)
		return
	}
	numOpts, err := numericsOpts(*fastmath, *int8)
	if err != nil {
		fatal(err)
	}
	if *batch > 1 {
		runNativeBatch(b, *seed, *batch, *parallel, numOpts)
		return
	}
	runNative(b, *seed, *parallel, *verbose, numOpts)
}

// numericsOpts maps the -fastmath / -int8 flags to inference options.
func numericsOpts(fastmath, int8 bool) ([]tango.SimOption, error) {
	switch {
	case fastmath && int8:
		return nil, fmt.Errorf("-fastmath and -int8 are mutually exclusive")
	case int8:
		return []tango.SimOption{tango.WithInt8()}, nil
	case fastmath:
		return []tango.SimOption{tango.WithFastMath()}, nil
	}
	return nil, nil
}

// runNativeBatch pushes a batch of sample inputs through the engine in one
// batched pass and reports per-sample results plus sustained throughput.
func runNativeBatch(b *tango.Benchmark, seed uint64, batch, parallel int, opts []tango.SimOption) {
	if parallel != 1 {
		opts = append(opts, tango.WithParallelism(parallel))
	}
	switch b.Kind() {
	case "CNN":
		// Synthesize the inputs outside the timed region so images/sec
		// reports engine throughput, matching the RNN branch.
		images := make([][]float32, batch)
		for i := range images {
			img, _, err := b.SampleImage(seed + uint64(i))
			if err != nil {
				fatal(err)
			}
			images[i] = img
		}
		start := time.Now()
		res, err := b.ClassifyBatch(images, opts...)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		for i, r := range res {
			fmt.Printf("sample %2d: predicted class %d (p=%.4f)\n", i, r.Class, r.Probabilities[r.Class])
		}
		fmt.Printf("batched inference: %d images in %v (%.2f images/sec)\n",
			batch, elapsed.Round(time.Millisecond), float64(batch)/elapsed.Seconds())
	default:
		histories := make([][]float64, batch)
		for i := range histories {
			h, err := b.SampleHistory(seed + uint64(i))
			if err != nil {
				fatal(err)
			}
			histories[i] = h
		}
		start := time.Now()
		preds, err := b.ForecastBatch(histories, opts...)
		if err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		for i, p := range preds {
			fmt.Printf("sequence %2d: predicted next value %.4f\n", i, p)
		}
		fmt.Printf("batched inference: %d sequences in %v (%.0f forecasts/sec)\n",
			batch, elapsed.Round(time.Microsecond), float64(batch)/elapsed.Seconds())
	}
}

func runNative(b *tango.Benchmark, seed uint64, parallel int, verbose bool, opts []tango.SimOption) {
	if parallel != 1 {
		opts = append(opts, tango.WithParallelism(parallel))
	}
	switch b.Kind() {
	case "CNN":
		res, err := b.ClassifySample(seed, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("native inference: predicted class %d (p=%.4f)\n",
			res.Class, res.Probabilities[res.Class])
		if verbose {
			layers := b.Layers()
			for _, l := range layers {
				fmt.Printf("  %-28s %8d activations\n", l, res.LayerActivations[l])
			}
		}
	default:
		hist, err := b.SampleHistory(seed)
		if err != nil {
			fatal(err)
		}
		pred, err := b.Forecast(hist, opts...)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("native inference: history %v -> predicted next value %.4f\n", hist, pred)
	}
}

func runSimulated(b *tango.Benchmark, device string, l1kb int, scheduler string, parallel int, fast, verbose bool) {
	opts := []tango.SimOption{
		tango.WithDevice(device),
		tango.WithScheduler(scheduler),
	}
	if l1kb >= 0 {
		opts = append(opts, tango.WithL1SizeKB(l1kb))
	}
	if parallel != 1 {
		opts = append(opts, tango.WithParallelism(parallel))
	}
	if fast {
		opts = append(opts, tango.WithFastSampling())
	}
	res, err := b.Simulate(opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated on %s: %d cycles (%.3f ms), %d instructions\n",
		res.Device, res.Cycles, res.Seconds*1e3, res.Instructions)
	fmt.Printf("power: peak %.1f W, average %.1f W, energy %.4f J\n",
		res.PeakWatts, res.AvgWatts, res.EnergyJoules)
	fmt.Printf("L2 miss ratio %.4f, integer-type instruction share %.1f%%, max registers %.1f KB/SM\n",
		res.L2MissRatio, res.IntegerTypeShare*100, res.MaxRegisterKBPerSM)

	fmt.Println("cycles by layer type:")
	classes := make([]string, 0, len(res.CyclesByLayerClass))
	for c := range res.CyclesByLayerClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool {
		return res.CyclesByLayerClass[classes[i]] > res.CyclesByLayerClass[classes[j]]
	})
	for _, c := range classes {
		fmt.Printf("  %-14s %12d (%.1f%%)\n", c, res.CyclesByLayerClass[c],
			100*float64(res.CyclesByLayerClass[c])/float64(res.Cycles))
	}
	if verbose {
		fmt.Println("per-layer detail:")
		for _, l := range res.Layers {
			fmt.Printf("  %-28s %-12s %12d cycles  %7.1f W  L2 miss %.4f\n",
				l.Layer, l.Class, l.Cycles, l.PowerWatts, l.L2MissRatio)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tango-run:", err)
	os.Exit(1)
}
