// Command tango-char regenerates a single table or figure of the paper's
// evaluation section.
//
// Usage:
//
//	tango-char -exp fig2                 # L1D sensitivity sweep (Figure 2)
//	tango-char -exp table3 -csv          # launch geometry as CSV
//	tango-char -exp fig6 -networks CifarNet
//	tango-char -list                     # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tango"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list the reproducible experiments and exit")
		exp      = flag.String("exp", "", "experiment id (table1..table4, fig1..fig16)")
		networks = flag.String("networks", "", "comma-separated benchmark filter (default: the experiment's full set)")
		fast     = flag.Bool("fast", false, "use coarse simulation sampling")
		parallel = flag.Int("parallel", 1, "worker goroutines for the simulation matrix (0 = one per CPU)")
		csv      = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	if *list {
		fmt.Println("Reproducible experiments:")
		for _, e := range tango.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tango-char: -exp is required (use -list to see experiments)")
		os.Exit(2)
	}

	var opts []tango.ExperimentOption
	if *networks != "" {
		var names []string
		for _, n := range strings.Split(*networks, ",") {
			if trimmed := strings.TrimSpace(n); trimmed != "" {
				names = append(names, trimmed)
			}
		}
		opts = append(opts, tango.WithNetworks(names...))
	}
	if *fast {
		opts = append(opts, tango.WithFastExperimentSampling())
	}
	if *parallel != 1 {
		opts = append(opts, tango.WithExperimentParallelism(*parallel))
	}

	session := tango.NewExperimentSession(opts...)
	session.PrewarmExperiment(*exp)
	table, err := session.Run(*exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tango-char:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(table.CSV())
		return
	}
	fmt.Print(table.String())
}
