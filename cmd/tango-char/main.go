// Command tango-char regenerates a single table or figure of the paper's
// evaluation section, or runs a multi-device characterization sweep across
// the registered accelerator targets — locally, against a persistent run
// cache, or sharded across worker processes.
//
// Usage:
//
//	tango-char -exp fig2                 # L1D sensitivity sweep (Figure 2)
//	tango-char -exp table3 -format csv   # launch geometry as CSV
//	tango-char -exp fig6 -networks CifarNet
//	tango-char -targets gp102,tx1,pynq -fast            # multi-device sweep
//	tango-char -targets gp102 -l1 0,64,256 -format json # L1 sweep as JSON
//	tango-char -list                     # list experiments and targets
//
// Distributed sweeps and the persistent cache:
//
//	tango-char -worker -addr :9101       # serve sweep cells over HTTP
//	tango-char -targets gp102 -workers localhost:9101,localhost:9102 -fast
//	tango-char -targets gp102 -cache-dir ~/.cache/tango -fast   # warm across runs
//
// The TANGO_CACHE_DIR environment variable attaches the persistent cache
// to every mode without a flag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"tango"
	"tango/internal/cli"
	"tango/internal/coord"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the reproducible experiments and registered targets, then exit")
		exp        = flag.String("exp", "", "experiment id (table1..table4, fig1..fig16)")
		targets    = flag.String("targets", "", "comma-separated accelerator targets: sweep mode (see -list)")
		l1Sizes    = flag.String("l1", "", "sweep mode: comma-separated L1D sizes in KB (0 = bypass)")
		schedulers = flag.String("schedulers", "", "sweep mode: comma-separated warp schedulers (gto, lrr, tlv)")
		networks   = flag.String("networks", "", "comma-separated benchmark filter (default: the experiment's full set)")
		fast       = flag.Bool("fast", false, "use coarse simulation sampling")
		parallel   = flag.Int("parallel", 1, "worker goroutines for the simulation matrix (0 = one per CPU)")
		format     = flag.String("format", "table", "output format: table, csv or json")
		csv        = flag.Bool("csv", false, "emit CSV (deprecated alias for -format csv)")
		worker     = flag.Bool("worker", false, "worker mode: serve sweep cells over HTTP (see -addr)")
		addr       = flag.String("addr", ":9101", "worker mode: HTTP listen address")
		workers    = flag.String("workers", "", "sweep mode: comma-separated worker addresses to shard cells across")
		cacheDir   = flag.String("cache-dir", os.Getenv("TANGO_CACHE_DIR"), "persistent run-cache directory (default $TANGO_CACHE_DIR)")
		cacheMaxMB = flag.Int("cache-max-mb", envInt("TANGO_CACHE_MAX_MB"), "bound the run-cache directory to this many MiB, evicting the oldest records (0 = unbounded, default $TANGO_CACHE_MAX_MB)")
		cacheStats = flag.Bool("cache-stats", false, "sweep mode: print run-cache counters to stderr after the sweep")
	)
	flag.Parse()

	if *worker {
		if err := runWorker(*addr, *cacheDir, *cacheMaxMB, cli.Workers(*parallel)); err != nil {
			fatal(err)
		}
		return
	}

	if *csv {
		*format = "csv"
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (want table, csv or json)", *format))
	}

	if *list {
		fmt.Println("Reproducible experiments:")
		for _, e := range tango.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nAccelerator targets (-targets):")
		for _, t := range tango.Targets() {
			fmt.Printf("  %-8s %-5s %-14s %s (aliases: %s)\n",
				t.Name, t.Class, t.Role, t.Description, strings.Join(t.Aliases, ", "))
		}
		return
	}

	names := cli.SplitList(*networks)

	if *targets != "" {
		if *exp != "" {
			fatal(fmt.Errorf("-exp and -targets are mutually exclusive"))
		}
		l1kb, err := cli.ParseInts(*l1Sizes)
		if err != nil {
			fatal(err)
		}
		var stats tango.CacheStats
		cfg := tango.SweepConfig{
			Networks:     names,
			Targets:      cli.SplitList(*targets),
			L1SizesKB:    l1kb,
			Schedulers:   cli.SplitList(*schedulers),
			FastSampling: *fast,
			Parallelism:  cli.Workers(*parallel),
			Workers:      cli.SplitList(*workers),
			CacheDir:     *cacheDir,
			CacheMaxMB:   *cacheMaxMB,
		}
		if *cacheStats {
			cfg.CacheStats = &stats
		}
		ds, err := tango.Sweep(cfg)
		if err != nil {
			fatal(err)
		}
		emitDataset(ds, *format)
		if *cacheStats {
			fmt.Fprintf(os.Stderr,
				"cache: computes=%d disk_hits=%d disk_misses=%d disk_writes=%d disk_errors=%d disk_evictions=%d mem_hits=%d mem_misses=%d\n",
				stats.Computes, stats.DiskHits, stats.DiskMisses, stats.DiskWrites, stats.DiskErrors,
				stats.DiskEvictions, stats.RunHits, stats.RunMisses)
		}
		return
	}

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tango-char: -exp or -targets is required (use -list to see experiments and targets)")
		os.Exit(2)
	}

	var opts []tango.ExperimentOption
	if len(names) > 0 {
		opts = append(opts, tango.WithNetworks(names...))
	}
	if *fast {
		opts = append(opts, tango.WithFastExperimentSampling())
	}
	if *parallel != 1 {
		opts = append(opts, tango.WithExperimentParallelism(*parallel))
	}

	session := tango.NewExperimentSession(opts...)
	session.PrewarmExperiment(*exp)
	table, err := session.Run(*exp)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "csv":
		fmt.Print(table.CSV())
	case "json":
		out, err := table.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	default:
		fmt.Print(table.String())
	}
}

// emitDataset prints a sweep dataset in the selected format.
func emitDataset(ds *tango.Dataset, format string) {
	switch format {
	case "csv":
		fmt.Print(ds.CSV())
	case "json":
		out, err := ds.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	default:
		fmt.Print(ds.Table("sweep", "Characterization sweep").String())
	}
}

// runWorker serves sweep cells over HTTP until SIGINT/SIGTERM, then
// drains the cell queue and exits cleanly.
func runWorker(addr, cacheDir string, cacheMaxMB, parallelism int) error {
	w := coord.NewWorker(coord.WorkerConfig{
		Parallelism: parallelism,
		CacheDir:    cacheDir,
		CacheMaxMB:  cacheMaxMB,
	})
	srv := &http.Server{Addr: addr, Handler: w}
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "tango-char: worker listening on %s (POST %s)\n", addr, coord.CellPath)
		errc <- srv.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "tango-char: worker shutting down (%s)\n", sig)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	w.Close()
	return nil
}

// envInt parses an integer environment variable, returning 0 when unset or
// malformed.
func envInt(name string) int {
	n, err := strconv.Atoi(os.Getenv(name))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tango-char:", err)
	os.Exit(1)
}
