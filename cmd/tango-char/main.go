// Command tango-char regenerates a single table or figure of the paper's
// evaluation section, or runs a multi-device characterization sweep across
// the registered accelerator targets.
//
// Usage:
//
//	tango-char -exp fig2                 # L1D sensitivity sweep (Figure 2)
//	tango-char -exp table3 -format csv   # launch geometry as CSV
//	tango-char -exp fig6 -networks CifarNet
//	tango-char -targets gp102,tx1,pynq -fast            # multi-device sweep
//	tango-char -targets gp102 -l1 0,64,256 -format json # L1 sweep as JSON
//	tango-char -list                     # list experiments and targets
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tango"
	"tango/internal/cli"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list the reproducible experiments and registered targets, then exit")
		exp        = flag.String("exp", "", "experiment id (table1..table4, fig1..fig16)")
		targets    = flag.String("targets", "", "comma-separated accelerator targets: sweep mode (see -list)")
		l1Sizes    = flag.String("l1", "", "sweep mode: comma-separated L1D sizes in KB (0 = bypass)")
		schedulers = flag.String("schedulers", "", "sweep mode: comma-separated warp schedulers (gto, lrr, tlv)")
		networks   = flag.String("networks", "", "comma-separated benchmark filter (default: the experiment's full set)")
		fast       = flag.Bool("fast", false, "use coarse simulation sampling")
		parallel   = flag.Int("parallel", 1, "worker goroutines for the simulation matrix (0 = one per CPU)")
		format     = flag.String("format", "table", "output format: table, csv or json")
		csv        = flag.Bool("csv", false, "emit CSV (deprecated alias for -format csv)")
	)
	flag.Parse()

	if *csv {
		*format = "csv"
	}
	switch *format {
	case "table", "csv", "json":
	default:
		fatal(fmt.Errorf("unknown format %q (want table, csv or json)", *format))
	}

	if *list {
		fmt.Println("Reproducible experiments:")
		for _, e := range tango.Experiments() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		fmt.Println("\nAccelerator targets (-targets):")
		for _, t := range tango.Targets() {
			fmt.Printf("  %-8s %-5s %-14s %s (aliases: %s)\n",
				t.Name, t.Class, t.Role, t.Description, strings.Join(t.Aliases, ", "))
		}
		return
	}

	names := cli.SplitList(*networks)

	if *targets != "" {
		if *exp != "" {
			fatal(fmt.Errorf("-exp and -targets are mutually exclusive"))
		}
		l1kb, err := cli.ParseInts(*l1Sizes)
		if err != nil {
			fatal(err)
		}
		ds, err := tango.Sweep(tango.SweepConfig{
			Networks:     names,
			Targets:      cli.SplitList(*targets),
			L1SizesKB:    l1kb,
			Schedulers:   cli.SplitList(*schedulers),
			FastSampling: *fast,
			Parallelism:  cli.Workers(*parallel),
		})
		if err != nil {
			fatal(err)
		}
		emitDataset(ds, *format)
		return
	}

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "tango-char: -exp or -targets is required (use -list to see experiments and targets)")
		os.Exit(2)
	}

	var opts []tango.ExperimentOption
	if len(names) > 0 {
		opts = append(opts, tango.WithNetworks(names...))
	}
	if *fast {
		opts = append(opts, tango.WithFastExperimentSampling())
	}
	if *parallel != 1 {
		opts = append(opts, tango.WithExperimentParallelism(*parallel))
	}

	session := tango.NewExperimentSession(opts...)
	session.PrewarmExperiment(*exp)
	table, err := session.Run(*exp)
	if err != nil {
		fatal(err)
	}
	switch *format {
	case "csv":
		fmt.Print(table.CSV())
	case "json":
		out, err := table.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	default:
		fmt.Print(table.String())
	}
}

// emitDataset prints a sweep dataset in the selected format.
func emitDataset(ds *tango.Dataset, format string) {
	switch format {
	case "csv":
		fmt.Print(ds.CSV())
	case "json":
		out, err := ds.JSON()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(out))
	default:
		fmt.Print(ds.Table("sweep", "Characterization sweep").String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tango-char:", err)
	os.Exit(1)
}
