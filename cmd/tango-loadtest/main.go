// Command tango-loadtest is the CI load generator for tango-serve: it fires
// N concurrent classify requests at a running server, then fails loudly
// unless
//
//   - every request came back 2xx,
//   - every response is bit-identical to a local single-sample Classify of
//     the same input (batching must never change numerics),
//   - /metrics reports zero queue-full rejections, and
//   - the mean formed batch size exceeds -min-mean-batch (i.e. dynamic
//     batching actually engaged under the concurrent load).
//
// It waits for /healthz before loading, so CI can start the server in the
// background and invoke this immediately:
//
//	./tango-serve -addr 127.0.0.1:8437 -benchmarks CifarNet &
//	go run ./cmd/tango-loadtest -url http://127.0.0.1:8437 -requests 96 -concurrency 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tango"
)

type classifyResponse struct {
	Class         int       `json:"class"`
	Probabilities []float32 `json:"probabilities"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8437", "base URL of the running tango-serve")
	benchmark := flag.String("benchmark", "CifarNet", "CNN benchmark to load (must be served)")
	requests := flag.Int("requests", 96, "total requests to fire")
	concurrency := flag.Int("concurrency", 16, "concurrent client goroutines")
	seedBase := flag.Uint64("seed", 1, "first sample seed; request i uses seed+i")
	minMeanBatch := flag.Float64("min-mean-batch", 1.0, "fail unless /metrics mean_batch_size exceeds this")
	verify := flag.Bool("verify", true, "bit-compare every response against a local Classify")
	readyTimeout := flag.Duration("ready-timeout", 60*time.Second, "max wait for /healthz")
	flag.Parse()

	if err := waitReady(*url+"/healthz", *readyTimeout); err != nil {
		log.Fatalf("tango-loadtest: %v", err)
	}

	b, err := tango.LoadBenchmark(*benchmark)
	if err != nil {
		log.Fatalf("tango-loadtest: %v", err)
	}

	// Pre-generate the inputs and, when verifying, the expected bit-exact
	// answers (local per-sample Classify of the same image), so the timed
	// window contains only HTTP traffic.
	images := make([][]float32, *requests)
	expected := make([]*tango.Classification, *requests)
	for i := range images {
		img, _, err := b.SampleImage(*seedBase + uint64(i))
		if err != nil {
			log.Fatalf("tango-loadtest: %v", err)
		}
		images[i] = img
		if *verify {
			expected[i], err = b.Classify(img)
			if err != nil {
				log.Fatalf("tango-loadtest: %v", err)
			}
		}
	}

	var failures atomic.Uint64
	idx := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 120 * time.Second}
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := fire(client, *url, *benchmark, images[i], expected[i]); err != nil {
					failures.Add(1)
					log.Printf("request %d: %v", i, err)
				}
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	m, err := fetchMetrics(client, *url+"/metrics")
	if err != nil {
		log.Fatalf("tango-loadtest: %v", err)
	}

	fmt.Printf("fired %d requests (%d concurrent) in %s: %.1f req/s\n",
		*requests, *concurrency, elapsed.Round(time.Millisecond), float64(*requests)/elapsed.Seconds())
	fmt.Printf("server metrics: %d requests, %d batches, mean batch %.2f, %d queue-full rejections\n",
		m.Requests, m.Batches, m.MeanBatchSize, m.RejectedQueueFull)

	failed := false
	if n := failures.Load(); n > 0 {
		fmt.Printf("FAIL: %d requests failed or mismatched\n", n)
		failed = true
	}
	if m.RejectedQueueFull > 0 {
		fmt.Printf("FAIL: %d requests were rejected queue-full at default depth\n", m.RejectedQueueFull)
		failed = true
	}
	if m.MeanBatchSize <= *minMeanBatch {
		fmt.Printf("FAIL: mean batch size %.2f <= %.2f: dynamic batching did not engage\n",
			m.MeanBatchSize, *minMeanBatch)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	if *verify {
		fmt.Println("PASS: all responses 2xx and bit-identical to local Classify; batching engaged")
	} else {
		fmt.Println("PASS: all responses 2xx; batching engaged")
	}
}

// waitReady polls healthURL until it answers 200.  The probe client has its
// own short timeout so a wedged listener (accepts, never answers) cannot
// stall the poll loop past the deadline.
func waitReady(healthURL string, timeout time.Duration) error {
	probe := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := probe.Get(healthURL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %s: %v", timeout, err)
			}
			return fmt.Errorf("server not ready after %s", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fire sends one classify request and, when want is non-nil, bit-compares
// the response against the local per-sample result.
func fire(client *http.Client, baseURL, benchmark string, image []float32, want *tango.Classification) error {
	body, err := json.Marshal(map[string]any{"benchmark": benchmark, "image": image})
	if err != nil {
		return err
	}
	resp, err := client.Post(baseURL+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	if want == nil {
		return nil
	}
	var got classifyResponse
	if err := json.Unmarshal(data, &got); err != nil {
		return err
	}
	if got.Class != want.Class {
		return fmt.Errorf("class mismatch: served %d, local %d", got.Class, want.Class)
	}
	if len(got.Probabilities) != len(want.Probabilities) {
		return fmt.Errorf("probability count mismatch: served %d, local %d",
			len(got.Probabilities), len(want.Probabilities))
	}
	for i := range got.Probabilities {
		if math.Float32bits(got.Probabilities[i]) != math.Float32bits(want.Probabilities[i]) {
			return fmt.Errorf("probability %d not bit-identical: served %v, local %v",
				i, got.Probabilities[i], want.Probabilities[i])
		}
	}
	return nil
}

// fetchMetrics reads the server's stats snapshot from /metrics, decoding
// into the server's own exported type so the CI assertions stay type-linked
// to the JSON shape tango-serve actually emits.
func fetchMetrics(client *http.Client, url string) (*tango.ServerStats, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var m tango.ServerStats
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return &m, nil
}
