// Command tango-loadtest is the CI load generator and chaos harness for
// tango-serve.
//
// In the default -profile steady it fires N concurrent classify requests
// at a running server, then fails loudly unless
//
//   - every request came back 2xx,
//   - every response is bit-identical to a local single-sample Classify of
//     the same input (batching must never change numerics),
//   - /v1/stats reports zero queue-full rejections, and
//   - the mean formed batch size exceeds -min-mean-batch (i.e. dynamic
//     batching actually engaged under the concurrent load).
//
// It waits for /healthz before loading, so CI can start the server in the
// background and invoke this immediately:
//
//	./tango-serve -addr 127.0.0.1:8437 -benchmarks CifarNet &
//	go run ./cmd/tango-loadtest -url http://127.0.0.1:8437 -requests 96 -concurrency 16
//
// The timed profiles (-profile ramp|spike|drain|chaos with -duration) drive
// load shapes instead of a fixed request count, and with -serve-bin the
// loadtest owns the server process itself: it starts it (-addr,
// -serve-args, -serve-env), watches for unexpected exits (any crash fails
// the run), SIGKILLs and restarts it every -kill-every (chaos), and shuts
// it down gracefully at the end.  Timed profiles tolerate backpressure
// (429), degraded-mode rejections (503), injected faults surfaced as 500s,
// and — while the server is being killed or drained — connection errors;
// what they never tolerate is a crash, an unexpected error, or a 200
// response that is not bit-identical to the local engine.  Client-side
// p50/p99 latency over successful requests is reported and, with
// -max-p99-ms, asserted.
//
// When the target server runs a fast-numerics tier (tango-serve -fastmath
// or -int8), pass the matching -numerics fast|int8: verification then
// requires top-1 class agreement with the local reference engine plus a
// relative-error bound instead of bitwise equality (with -serve-bin, the
// flag is also forwarded to the owned server).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tango"
)

type classifyResponse struct {
	Class         int       `json:"class"`
	Probabilities []float32 `json:"probabilities"`
}

// verifyTol is the response-verification tolerance selected by -numerics:
// 0 keeps the bit-identical contract; a fast tier relaxes verification to
// top-1 class agreement plus a relative-error bound, because batched
// fast-tier runs tile differently than the local single-sample engine.  Set
// once in main before any worker goroutine starts.
var verifyTol float64

// maxRelErr returns max_i |got_i - want_i| / max_i |want_i|.
func maxRelErr(got, want []float32) float64 {
	var maxAbs, maxDiff float64
	for i := range want {
		if a := math.Abs(float64(want[i])); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(float64(got[i]) - float64(want[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8437", "base URL of the running tango-serve (ignored with -serve-bin)")
	benchmark := flag.String("benchmark", "CifarNet", "CNN benchmark to load (must be served)")
	requests := flag.Int("requests", 96, "total requests to fire (steady profile)")
	concurrency := flag.Int("concurrency", 16, "concurrent client goroutines")
	seedBase := flag.Uint64("seed", 1, "first sample seed; request i uses seed+i")
	minMeanBatch := flag.Float64("min-mean-batch", 1.0, "fail unless /v1/stats mean_batch_size exceeds this (steady profile)")
	verify := flag.Bool("verify", true, "bit-compare every 200 response against a local Classify")
	readyTimeout := flag.Duration("ready-timeout", 60*time.Second, "max wait for /healthz")
	profile := flag.String("profile", "steady", "load profile: steady, ramp, spike, drain or chaos")
	duration := flag.Duration("duration", 30*time.Second, "run length for the timed profiles")
	maxP99MS := flag.Float64("max-p99-ms", 0, "fail if client-side p99 over successful requests exceeds this (0 = unbounded)")
	serveBin := flag.String("serve-bin", "", "path to a tango-serve binary; when set, the loadtest owns the server process")
	serveArgs := flag.String("serve-args", "", "extra space-separated arguments for -serve-bin")
	serveEnv := flag.String("serve-env", "", "extra space-separated KEY=VAL environment for -serve-bin")
	killEvery := flag.Duration("kill-every", 0, "SIGKILL and restart the owned server at this interval (0 = never)")
	addr := flag.String("addr", "127.0.0.1:8441", "listen address for the owned server")
	numerics := flag.String("numerics", "", "numerics tier the target server runs: \"\" or reference (bit-exact verify), fast or int8 (tolerance + top-1 verify); with -serve-bin the matching flag is passed to the owned server")
	flag.Parse()

	switch *numerics {
	case "", "reference", "ref":
	case "fast", "fastmath":
		verifyTol = 1e-3
	case "int8":
		verifyTol = 0.25
	default:
		log.Fatalf("tango-loadtest: unknown -numerics %q (want reference, fast or int8)", *numerics)
	}

	baseURL := *url
	var sup *supervisor
	if *serveBin != "" {
		baseURL = "http://" + *addr
		args := []string{"-addr", *addr, "-benchmarks", *benchmark}
		switch {
		case verifyTol == 0.25:
			args = append(args, "-int8")
		case verifyTol > 0:
			args = append(args, "-fastmath")
		}
		sup = &supervisor{
			bin:  *serveBin,
			args: append(args, strings.Fields(*serveArgs)...),
			env:  strings.Fields(*serveEnv),
		}
		if err := sup.start(baseURL+"/healthz", *readyTimeout); err != nil {
			log.Fatalf("tango-loadtest: %v", err)
		}
	} else if err := waitReady(baseURL+"/healthz", *readyTimeout); err != nil {
		log.Fatalf("tango-loadtest: %v", err)
	}

	switch *profile {
	case "steady":
		runSteady(baseURL, *benchmark, *requests, *concurrency, *seedBase, *minMeanBatch, *verify, *maxP99MS, sup)
	case "ramp", "spike", "drain", "chaos":
		runTimed(*profile, baseURL, *benchmark, *concurrency, *seedBase, *duration, *verify, *maxP99MS, *killEvery, sup)
	default:
		log.Fatalf("tango-loadtest: unknown -profile %q (want steady, ramp, spike, drain or chaos)", *profile)
	}
}

// sampleSet pre-generates deterministic inputs and, when verifying, their
// bit-exact local answers, so the timed window contains only HTTP traffic.
func sampleSet(benchmark string, n int, seedBase uint64, verify bool) ([][]float32, []*tango.Classification) {
	b, err := tango.LoadBenchmark(benchmark)
	if err != nil {
		log.Fatalf("tango-loadtest: %v", err)
	}
	images := make([][]float32, n)
	expected := make([]*tango.Classification, n)
	for i := range images {
		img, _, err := b.SampleImage(seedBase + uint64(i))
		if err != nil {
			log.Fatalf("tango-loadtest: %v", err)
		}
		images[i] = img
		if verify {
			expected[i], err = b.Classify(img)
			if err != nil {
				log.Fatalf("tango-loadtest: %v", err)
			}
		}
	}
	return images, expected
}

// runSteady is the original fixed-request-count load test: everything must
// succeed, batching must engage, nothing may be rejected.
func runSteady(baseURL, benchmark string, requests, concurrency int, seedBase uint64, minMeanBatch float64, verify bool, maxP99MS float64, sup *supervisor) {
	images, expected := sampleSet(benchmark, requests, seedBase, verify)

	var failures atomic.Uint64
	var lats latencies
	idx := make(chan int)
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 120 * time.Second}
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				t0 := time.Now()
				if err := fire(client, baseURL, benchmark, images[i], expected[i], ""); err != nil {
					failures.Add(1)
					log.Printf("request %d: %v", i, err)
					continue
				}
				lats.add(time.Since(t0))
			}
		}()
	}
	for i := 0; i < requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	elapsed := time.Since(start)

	m, err := fetchMetrics(client, baseURL+"/v1/stats")
	if err != nil {
		log.Fatalf("tango-loadtest: %v", err)
	}

	fmt.Printf("fired %d requests (%d concurrent) in %s: %.1f req/s\n",
		requests, concurrency, elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds())
	fmt.Printf("server metrics: %d requests, %d batches, mean batch %.2f, %d queue-full rejections\n",
		m.Requests, m.Batches, m.MeanBatchSize, m.RejectedQueueFull)
	p50, p99 := lats.percentiles()
	fmt.Printf("client latency: p50 %s, p99 %s over %d successful requests\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), lats.count())

	failed := false
	if n := failures.Load(); n > 0 {
		fmt.Printf("FAIL: %d requests failed or mismatched\n", n)
		failed = true
	}
	if m.RejectedQueueFull > 0 {
		fmt.Printf("FAIL: %d requests were rejected queue-full at default depth\n", m.RejectedQueueFull)
		failed = true
	}
	if m.MeanBatchSize <= minMeanBatch {
		fmt.Printf("FAIL: mean batch size %.2f <= %.2f: dynamic batching did not engage\n",
			m.MeanBatchSize, minMeanBatch)
		failed = true
	}
	if maxP99MS > 0 && p99 > time.Duration(maxP99MS*float64(time.Millisecond)) {
		fmt.Printf("FAIL: client p99 %s exceeds %.1fms\n", p99, maxP99MS)
		failed = true
	}
	if sup != nil {
		if err := sup.shutdown(); err != nil {
			fmt.Printf("FAIL: %v\n", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	if verify && verifyTol > 0 {
		fmt.Println("PASS: all responses 2xx, top-1 agreement within fast-tier tolerance; batching engaged")
	} else if verify {
		fmt.Println("PASS: all responses 2xx and bit-identical to local Classify; batching engaged")
	} else {
		fmt.Println("PASS: all responses 2xx; batching engaged")
	}
}

// Outcome classes of one timed-profile request.
const (
	outOK       = iota // 200, verified bit-exact
	outShed            // 429 or 503: backpressure/degraded-mode rejection
	outInjected        // 500 carrying an injected-fault marker
	outConn            // transport error while the server was down on purpose
	outBad             // anything else: always a failure
	outKinds
)

var outNames = [outKinds]string{"ok", "shed", "injected", "conn", "bad"}

// runTimed drives one of the shaped profiles for -duration and asserts the
// chaos invariants: no crashes, no unexpected errors, no bit-exactness
// violations, p99 within bound, and the server still served real traffic.
func runTimed(profile, baseURL, benchmark string, concurrency int, seedBase uint64, duration time.Duration, verify bool, maxP99MS float64, killEvery time.Duration, sup *supervisor) {
	const sampleCount = 16
	images, expected := sampleSet(benchmark, sampleCount, seedBase, verify)

	// Connection errors are only legitimate while the server is being
	// killed (chaos) or drained on purpose.
	tolerateConn := profile == "chaos" || profile == "drain" || (sup != nil && killEvery > 0)
	if (profile == "drain" || killEvery > 0) && sup == nil {
		log.Fatalf("tango-loadtest: -profile drain and -kill-every need -serve-bin (the loadtest must own the server)")
	}

	var counts [outKinds]atomic.Uint64
	var bitErrors atomic.Uint64
	var lats latencies
	var seq atomic.Uint64
	stopKiller := make(chan struct{})
	var killerWG sync.WaitGroup
	if sup != nil && killEvery > 0 {
		killerWG.Add(1)
		go func() {
			defer killerWG.Done()
			for {
				select {
				case <-stopKiller:
					return
				case <-time.After(killEvery):
					log.Printf("chaos: SIGKILL + restart")
					if err := sup.killRestart(baseURL+"/healthz", 2*time.Minute); err != nil {
						log.Printf("chaos restart failed: %v", err)
						counts[outBad].Add(1)
						return
					}
				}
			}
		}()
	}
	if profile == "drain" {
		// Begin the graceful drain partway through: the remaining window
		// observes the draining 503s and connection errors.
		time.AfterFunc(duration*3/5, func() {
			log.Printf("drain: SIGTERM to owned server")
			sup.beginShutdown()
		})
	}

	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	end := start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for time.Now().Before(end) {
				frac := float64(time.Since(start)) / float64(duration)
				if worker >= allowedWorkers(profile, frac, concurrency) {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				i := seq.Add(1)
				priority := ""
				if profile == "chaos" {
					priority = [...]string{"low", "normal", "high"}[i%3]
				}
				t0 := time.Now()
				kind, err := fireTimed(client, baseURL, benchmark, images[i%sampleCount], expected[i%sampleCount], priority, tolerateConn)
				switch kind {
				case outOK:
					lats.add(time.Since(t0))
				case outConn, outShed:
					// The server is down or shedding; back off instead of
					// hammering the refused socket in a tight loop.
					time.Sleep(10 * time.Millisecond)
				case outBad:
					if err != nil && strings.Contains(err.Error(), "not bit-identical") {
						bitErrors.Add(1)
					}
					log.Printf("request %d: %v", i, err)
				}
				counts[kind].Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stopKiller)
	killerWG.Wait()

	// Snapshot server metrics while the server is still up (best-effort:
	// the drain profile has already taken it down).
	if m, err := fetchMetrics(client, baseURL+"/v1/stats"); err == nil {
		fmt.Printf("server metrics: %d requests, %d batches (mean %.2f), %d bisections, %d isolated, %d shed\n",
			m.Requests, m.Batches, m.MeanBatchSize, sumBisections(m), sumIsolated(m), m.Shed)
	}
	var failed bool
	if sup != nil {
		if err := sup.shutdown(); err != nil {
			fmt.Printf("FAIL: %v\n", err)
			failed = true
		}
		if n := sup.crashes.Load(); n > 0 {
			fmt.Printf("FAIL: server crashed %d time(s)\n", n)
			failed = true
		}
	}

	fmt.Printf("profile %s over %s (%d workers):", profile, duration, concurrency)
	for k := 0; k < outKinds; k++ {
		fmt.Printf(" %s=%d", outNames[k], counts[k].Load())
	}
	fmt.Println()
	p50, p99 := lats.percentiles()
	fmt.Printf("client latency: p50 %s, p99 %s over %d successful requests\n",
		p50.Round(time.Microsecond), p99.Round(time.Microsecond), lats.count())

	if counts[outOK].Load() == 0 {
		fmt.Println("FAIL: no request succeeded — the server never served under this profile")
		failed = true
	}
	if n := counts[outBad].Load(); n > 0 {
		fmt.Printf("FAIL: %d unexpected failures\n", n)
		failed = true
	}
	if n := bitErrors.Load(); n > 0 {
		fmt.Printf("FAIL: %d responses were not bit-identical to the local engine\n", n)
		failed = true
	}
	if maxP99MS > 0 && p99 > time.Duration(maxP99MS*float64(time.Millisecond)) {
		fmt.Printf("FAIL: client p99 %s exceeds %.1fms\n", p99, maxP99MS)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
	if verifyTol > 0 {
		fmt.Println("PASS: no crashes, no unexpected errors, all 200s within fast-tier tolerance")
	} else {
		fmt.Println("PASS: no crashes, no unexpected errors, all 200s bit-identical")
	}
}

// allowedWorkers shapes the load: how many of the max workers may fire at
// normalized time frac in [0, 1).
func allowedWorkers(profile string, frac float64, max int) int {
	switch profile {
	case "ramp":
		n := 1 + int(frac*float64(max-1))
		if n > max {
			n = max
		}
		return n
	case "spike":
		// Quarter load with a full-concurrency spike through the middle.
		if frac >= 0.4 && frac < 0.6 {
			return max
		}
		n := max / 4
		if n < 1 {
			n = 1
		}
		return n
	default: // steady background for drain/chaos
		return max
	}
}

// latencies is a concurrency-safe latency sample.
type latencies struct {
	mu sync.Mutex
	ds []time.Duration
}

func (l *latencies) add(d time.Duration) {
	l.mu.Lock()
	l.ds = append(l.ds, d)
	l.mu.Unlock()
}

func (l *latencies) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.ds)
}

func (l *latencies) percentiles() (p50, p99 time.Duration) {
	l.mu.Lock()
	ds := append([]time.Duration(nil), l.ds...)
	l.mu.Unlock()
	if len(ds) == 0 {
		return 0, 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	rank := func(p float64) time.Duration {
		idx := int(p*float64(len(ds)-1) + 0.5)
		return ds[idx]
	}
	return rank(0.50), rank(0.99)
}

func sumBisections(m *tango.ServerStats) (n uint64) {
	for _, b := range m.Benchmarks {
		n += b.Bisections
	}
	return n
}

func sumIsolated(m *tango.ServerStats) (n uint64) {
	for _, b := range m.Benchmarks {
		n += b.Isolated
	}
	return n
}

// supervisor owns the tango-serve process during profiles that kill,
// restart or drain it.  Any exit it did not initiate counts as a crash.
type supervisor struct {
	bin  string
	args []string
	env  []string

	mu       sync.Mutex
	cmd      *exec.Cmd
	waitCh   chan error
	expected atomic.Bool
	crashes  atomic.Uint64
}

func (s *supervisor) start(healthURL string, readyTimeout time.Duration) error {
	cmd := exec.Command(s.bin, s.args...)
	cmd.Env = append(os.Environ(), s.env...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", s.bin, err)
	}
	waitCh := make(chan error, 1)
	go func() {
		err := cmd.Wait()
		if !s.expected.Load() {
			s.crashes.Add(1)
			log.Printf("tango-loadtest: server exited unexpectedly: %v", err)
		}
		waitCh <- err
	}()
	s.mu.Lock()
	s.cmd = cmd
	s.waitCh = waitCh
	s.mu.Unlock()
	return waitReady(healthURL, readyTimeout)
}

// killRestart SIGKILLs the server (the expected, violent chaos case) and
// brings a fresh instance up to readiness.
func (s *supervisor) killRestart(healthURL string, readyTimeout time.Duration) error {
	s.mu.Lock()
	cmd, waitCh := s.cmd, s.waitCh
	s.mu.Unlock()
	s.expected.Store(true)
	_ = cmd.Process.Kill()
	<-waitCh
	s.expected.Store(false)
	return s.start(healthURL, readyTimeout)
}

// beginShutdown sends SIGTERM without waiting; the drain profile keeps
// firing while the server drains.
func (s *supervisor) beginShutdown() {
	s.mu.Lock()
	cmd := s.cmd
	s.mu.Unlock()
	s.expected.Store(true)
	_ = cmd.Process.Signal(syscall.SIGTERM)
}

// shutdown gracefully stops the server and fails unless it exits cleanly.
func (s *supervisor) shutdown() error {
	s.mu.Lock()
	cmd, waitCh := s.cmd, s.waitCh
	s.mu.Unlock()
	s.expected.Store(true)
	_ = cmd.Process.Signal(syscall.SIGTERM)
	select {
	case err := <-waitCh:
		if err != nil {
			return fmt.Errorf("server exited uncleanly on SIGTERM: %v", err)
		}
		return nil
	case <-time.After(2 * time.Minute):
		_ = cmd.Process.Kill()
		return fmt.Errorf("server did not exit within 2m of SIGTERM")
	}
}

// waitReady polls healthURL until it answers 200.  The probe client has its
// own short timeout so a wedged listener (accepts, never answers) cannot
// stall the poll loop past the deadline.
func waitReady(healthURL string, timeout time.Duration) error {
	probe := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := probe.Get(healthURL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server not ready after %s: %v", timeout, err)
			}
			return fmt.Errorf("server not ready after %s", timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fire sends one classify request and, when want is non-nil, bit-compares
// the response against the local per-sample result.
func fire(client *http.Client, baseURL, benchmark string, image []float32, want *tango.Classification, priority string) error {
	body, err := json.Marshal(map[string]any{"benchmark": benchmark, "image": image})
	if err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if priority != "" {
		req.Header.Set("X-Priority", priority)
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, body: string(bytes.TrimSpace(data))}
	}
	if want == nil {
		return nil
	}
	var got classifyResponse
	if err := json.Unmarshal(data, &got); err != nil {
		return err
	}
	if got.Class != want.Class {
		return fmt.Errorf("response not bit-identical: class mismatch: served %d, local %d", got.Class, want.Class)
	}
	if len(got.Probabilities) != len(want.Probabilities) {
		return fmt.Errorf("response not bit-identical: probability count mismatch: served %d, local %d",
			len(got.Probabilities), len(want.Probabilities))
	}
	if verifyTol > 0 {
		if re := maxRelErr(got.Probabilities, want.Probabilities); re > verifyTol {
			return fmt.Errorf("response not bit-identical: relative error %.3g exceeds tolerance %.3g", re, verifyTol)
		}
		return nil
	}
	for i := range got.Probabilities {
		if math.Float32bits(got.Probabilities[i]) != math.Float32bits(want.Probabilities[i]) {
			return fmt.Errorf("probability %d not bit-identical: served %v, local %v",
				i, got.Probabilities[i], want.Probabilities[i])
		}
	}
	return nil
}

// statusError is a non-200 response, kept structured so the chaos outcome
// classifier can sort by status code and body.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return fmt.Sprintf("status %d: %s", e.code, e.body) }

// fireTimed fires one request under a timed profile and classifies the
// outcome against the chaos tolerance policy.
func fireTimed(client *http.Client, baseURL, benchmark string, image []float32, want *tango.Classification, priority string, tolerateConn bool) (int, error) {
	err := fire(client, baseURL, benchmark, image, want, priority)
	if err == nil {
		return outOK, nil
	}
	var se *statusError
	if !errorsAs(err, &se) {
		// Transport-level failure: the connection was refused or cut.
		if tolerateConn {
			return outConn, err
		}
		return outBad, err
	}
	switch {
	case se.code == http.StatusTooManyRequests || se.code == http.StatusServiceUnavailable:
		return outShed, err
	case se.code == http.StatusInternalServerError && strings.Contains(se.body, "resilience: injected"):
		return outInjected, err
	default:
		return outBad, err
	}
}

// errorsAs is errors.As without importing errors alongside the dominant
// fmt usage in this file.
func errorsAs(err error, target **statusError) bool {
	for err != nil {
		if se, ok := err.(*statusError); ok {
			*target = se
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// fetchMetrics reads the server's stats snapshot from GET /v1/stats (the
// JSON surface; /metrics is Prometheus text), decoding into the server's own
// exported type so the CI assertions stay type-linked to the JSON shape
// tango-serve actually emits.
func fetchMetrics(client *http.Client, url string) (*tango.ServerStats, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var m tango.ServerStats
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return &m, nil
}
