package tango

import "time"

// This file is the v1 serving configuration surface: functional ServeOptions
// mirroring the engine's SimOption pattern.  NewServer accepts either style —
// the ServerConfig struct remains as a compatibility surface that lowers onto
// the equivalent options (see ServerConfig.options), and explicit options
// applied after it win.

// serveOptions is the resolved server configuration every ServeOption edits.
type serveOptions struct {
	maxBatch         int
	maxDelay         time.Duration
	queueDepth       int
	parallelism      int
	requestTimeout   time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	numerics         string
	slo              time.Duration
	modelBudget      int64
	onDemand         bool
}

// ServeOption configures a Server at construction.  Options compose left to
// right: later options override earlier ones, and every option applies after
// the ServerConfig compatibility struct has been lowered.
type ServeOption func(*serveOptions)

// WithMaxBatch bounds the largest batch formed per benchmark; a forming
// batch is flushed as soon as it reaches n requests.  n < 1 keeps the
// default (16).
func WithMaxBatch(n int) ServeOption {
	return func(o *serveOptions) { o.maxBatch = n }
}

// WithMaxDelay bounds how long the oldest queued request waits for its batch
// to fill before being flushed anyway.  Zero flushes greedily.  Under
// WithSLO the delay becomes the adaptive window's ceiling instead of a fixed
// wait (and is further capped at half the SLO).
func WithMaxDelay(d time.Duration) ServeOption {
	return func(o *serveOptions) { o.maxDelay = d }
}

// WithQueueDepth sets the per-benchmark bounded queue capacity; requests
// beyond it are rejected immediately with ErrQueueFull.  n < 1 keeps the
// default (256).
func WithQueueDepth(n int) ServeOption {
	return func(o *serveOptions) { o.queueDepth = n }
}

// WithServeParallelism sets the compute-engine worker count used for batch
// runs, exactly as the engine-level WithParallelism: 0 keeps the
// single-worker engine, negative selects one worker per CPU.
func WithServeParallelism(n int) ServeOption {
	return func(o *serveOptions) { o.parallelism = n }
}

// WithRequestTimeout bounds each request's end-to-end time (queue wait +
// batch compute) with a context deadline; requests whose caller context
// carries a tighter deadline keep the tighter one.  Zero means no
// server-imposed deadline.
func WithRequestTimeout(d time.Duration) ServeOption {
	return func(o *serveOptions) { o.requestTimeout = d }
}

// WithBreaker sets the per-benchmark circuit breaker policy: threshold
// consecutive engine failures trip the breaker open (requests then fail fast
// with ErrDegraded) and cooldown is how long it waits before a probe request
// tests recovery.  Non-positive values keep the resilience defaults (5, 2s).
func WithBreaker(threshold int, cooldown time.Duration) ServeOption {
	return func(o *serveOptions) {
		o.breakerThreshold = threshold
		o.breakerCooldown = cooldown
	}
}

// WithNumericsTier selects the compute-engine numerics tier for every served
// benchmark: "" or "reference" (default, bit-exact), "fast" or "int8".
// Under a fast tier, served results preserve each request's top-1 class but
// are no longer bit-identical to single-sample Classify / Forecast.
func WithNumericsTier(tier string) ServeOption {
	return func(o *serveOptions) { o.numerics = tier }
}

// WithSLO sets a per-request p99 latency target and switches every
// benchmark's batcher from a fixed batch window to an adaptive one: a
// per-model controller tunes the window between zero and
// min(MaxDelay, SLO/2) from observed queue depth and p99 latency, so light
// load is served at single-sample latency while pressure still fills
// batches.  Zero disables adaptation and keeps the static MaxDelay window.
func WithSLO(targetP99 time.Duration) ServeOption {
	return func(o *serveOptions) { o.slo = targetP99 }
}

// WithModelBudget caps the total resident bytes (weights + packed panels +
// scratch high-water) of loaded model engines.  Exceeding the budget evicts
// idle engines in least-recently-used order; an evicted model reloads
// transparently on its next request, with its serving counters carried
// across the eviction.  A budget implies WithOnDemandLoading.  Zero means
// unlimited (every model stays resident).
func WithModelBudget(bytes int64) ServeOption {
	return func(o *serveOptions) { o.modelBudget = bytes }
}

// WithOnDemandLoading defers each benchmark's engine load (weight synthesis,
// plan resolution, prewarm) to its first request instead of NewServer.
// Construction still validates every benchmark name and kind up front, so an
// unknown model fails fast; only the expensive load is lazy.
func WithOnDemandLoading() ServeOption {
	return func(o *serveOptions) { o.onDemand = true }
}

// options lowers the compatibility struct onto the equivalent functional
// options.  Zero-valued fields lower to nothing, so a zero ServerConfig is
// exactly the default option set.
func (c ServerConfig) options() []ServeOption {
	var opts []ServeOption
	if c.MaxBatch != 0 {
		opts = append(opts, WithMaxBatch(c.MaxBatch))
	}
	if c.MaxDelay != 0 {
		opts = append(opts, WithMaxDelay(c.MaxDelay))
	}
	if c.QueueDepth != 0 {
		opts = append(opts, WithQueueDepth(c.QueueDepth))
	}
	if c.Parallelism != 0 {
		opts = append(opts, WithServeParallelism(c.Parallelism))
	}
	if c.RequestTimeout != 0 {
		opts = append(opts, WithRequestTimeout(c.RequestTimeout))
	}
	if c.BreakerThreshold != 0 || c.BreakerCooldown != 0 {
		opts = append(opts, WithBreaker(c.BreakerThreshold, c.BreakerCooldown))
	}
	if c.Numerics != "" {
		opts = append(opts, WithNumericsTier(c.Numerics))
	}
	if c.TargetP99 != 0 {
		opts = append(opts, WithSLO(c.TargetP99))
	}
	if c.ModelBudgetBytes != 0 {
		opts = append(opts, WithModelBudget(c.ModelBudgetBytes))
	}
	if c.OnDemand {
		opts = append(opts, WithOnDemandLoading())
	}
	return opts
}
