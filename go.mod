module tango

go 1.23
