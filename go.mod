module tango

go 1.24
