package tango_test

import (
	"fmt"
	"strings"
	"testing"

	"tango"
)

// TestClassifyBatchMatchesSingle verifies the public batched API against the
// single-sample path: every probability must be bit-identical and every
// predicted class equal, serial and parallel.
func TestClassifyBatchMatchesSingle(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	images := make([][]float32, n)
	singles := make([]*tango.Classification, n)
	for i := range images {
		img, _, err := b.SampleImage(uint64(100 + i))
		if err != nil {
			t.Fatal(err)
		}
		images[i] = img
		singles[i], err = b.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4} {
		got, err := b.ClassifyBatch(images, tango.WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), n)
		}
		for i, g := range got {
			if g.Class != singles[i].Class {
				t.Fatalf("workers=%d sample %d: class %d, want %d", workers, i, g.Class, singles[i].Class)
			}
			sameProbs(t, fmt.Sprintf("workers=%d sample %d", workers, i),
				g.Probabilities, singles[i].Probabilities)
		}
	}
}

// TestForecastBatchMatchesSingle verifies batched RNN forecasting against
// per-history Forecast calls on both recurrent benchmarks.
func TestForecastBatchMatchesSingle(t *testing.T) {
	for _, name := range []string{"LSTM", "GRU"} {
		b, err := tango.LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		const n = 4
		histories := make([][]float64, n)
		want := make([]float64, n)
		for i := range histories {
			h, err := b.SampleHistory(uint64(7 + i))
			if err != nil {
				t.Fatal(err)
			}
			histories[i] = h
			want[i], err = b.Forecast(h)
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := b.ForecastBatch(histories)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			sameForecast(t, fmt.Sprintf("%s history %d", name, i), got[i], want[i])
		}
	}
}

// TestBatchAPIEdgeCases is the table-driven edge-case sweep for the batched
// public API: batch of one matches the single path exactly, empty batches
// and ragged or misshapen inputs are rejected with descriptive errors.
func TestBatchAPIEdgeCases(t *testing.T) {
	cnn, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	rnn, err := tango.LoadBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := cnn.SampleImage(3)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := rnn.SampleHistory(3)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("batch-of-one-matches-single", func(t *testing.T) {
		single, err := cnn.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := cnn.ClassifyBatch([][]float32{img})
		if err != nil {
			t.Fatal(err)
		}
		if batch[0].Class != single.Class {
			t.Fatalf("class %d, want %d", batch[0].Class, single.Class)
		}
		sameProbs(t, "batch of one", batch[0].Probabilities, single.Probabilities)
		fSingle, err := rnn.Forecast(hist)
		if err != nil {
			t.Fatal(err)
		}
		fBatch, err := rnn.ForecastBatch([][]float64{hist})
		if err != nil {
			t.Fatal(err)
		}
		sameForecast(t, "forecast batch of one", fBatch[0], fSingle)
	})

	errCases := []struct {
		name    string
		call    func() error
		errPart string
	}{
		{"empty classify batch", func() error {
			_, err := cnn.ClassifyBatch(nil)
			return err
		}, "empty batch"},
		{"empty forecast batch", func() error {
			_, err := rnn.ForecastBatch([][]float64{})
			return err
		}, "empty batch"},
		{"short image", func() error {
			_, err := cnn.ClassifyBatch([][]float32{img, img[:10]})
			return err
		}, "image 1"},
		{"long image", func() error {
			_, err := cnn.ClassifyBatch([][]float32{append(append([]float32{}, img...), 1)})
			return err
		}, "image 0"},
		{"ragged histories", func() error {
			_, err := rnn.ForecastBatch([][]float64{hist, hist[:1]})
			return err
		}, "ragged"},
		{"empty first history", func() error {
			_, err := rnn.ForecastBatch([][]float64{{}, hist})
			return err
		}, "empty"},
		{"classify batch on RNN", func() error {
			_, err := rnn.ClassifyBatch([][]float32{img})
			return err
		}, "ClassifyBatch"},
		{"forecast batch on CNN", func() error {
			_, err := cnn.ForecastBatch([][]float64{hist})
			return err
		}, "ForecastBatch"},
	}
	for _, c := range errCases {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), c.errPart) {
				t.Fatalf("error %q does not mention %q", err, c.errPart)
			}
		})
	}
}

// TestClassifySampleBatch checks the deterministic sample batch helper
// against per-seed ClassifySample calls.
func TestClassifySampleBatch(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	got, err := b.ClassifySampleBatch(50, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		single, err := b.ClassifySample(50 + uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Class != single.Class {
			t.Fatalf("sample %d: class %d, want %d", i, got[i].Class, single.Class)
		}
		sameProbs(t, fmt.Sprintf("sample %d", i), got[i].Probabilities, single.Probabilities)
	}
}
