package tango

import (
	"context"
	"errors"
	"fmt"
	"time"

	"tango/internal/resilience"
)

// This file is the serving stack's resilience layer: priority-classed
// admission with load shedding, per-benchmark circuit breakers, request
// deadline budgets and the tri-state health model behind GET /healthz.
// The scheduling and compute paths live in serve.go; everything here runs
// before a request is allowed to queue.

// pointAdmit is the fault-injection site fired during request admission,
// before queueing; latency rules here model slow admission control, error
// rules model an admission-layer outage.
var pointAdmit = resilience.Register("serve.admit", "during Server request admission, before enqueue")

// Priority classifies a request for admission under load.  Under queue
// pressure the server sheds low-priority work first, then normal; high
// priority is only ever rejected by a completely full queue.
type Priority int

const (
	// PriorityNormal is the default class (the zero value): shed when the
	// queue is above ~90% occupancy.
	PriorityNormal Priority = iota
	// PriorityLow marks best-effort work (batch backfill, speculative
	// prefetch): shed when the queue is above ~50% occupancy.
	PriorityLow
	// PriorityHigh marks interactive work: admitted until the queue is
	// completely full.
	PriorityHigh
)

// String returns the wire name of the priority class, as accepted in the
// X-Priority HTTP header.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	default:
		return "normal"
	}
}

// ParsePriority maps a wire name ("low", "normal", "high") to a
// Priority; empty and unknown names are normal, so a
// malformed header degrades to the default class instead of erroring.
func ParsePriority(s string) Priority {
	switch s {
	case "low":
		return PriorityLow
	case "high":
		return PriorityHigh
	default:
		return PriorityNormal
	}
}

// priorityKey is the context key carrying a request's priority class.
type priorityKey struct{}

// WithPriority tags a request context with a priority class; Server
// admission reads it when deciding what to shed under load.  The HTTP
// frontend maps the X-Priority header ("low", "normal", "high") onto
// this.
func WithPriority(ctx context.Context, p Priority) context.Context {
	return context.WithValue(ctx, priorityKey{}, p)
}

// PriorityFromContext returns the context's priority class, defaulting to
// PriorityNormal.
func PriorityFromContext(ctx context.Context) Priority {
	if p, ok := ctx.Value(priorityKey{}).(Priority); ok {
		return p
	}
	return PriorityNormal
}

// Shed thresholds: the queue-occupancy fraction at or above which a class
// is rejected with a wrapped ErrQueueFull (HTTP 429 + Retry-After).
const (
	shedLowAt    = 0.5
	shedNormalAt = 0.9
)

// admit decides whether a request may enter the model's queue: the fault
// plan fires first, then the circuit breaker, then priority-classed
// occupancy shedding.  It returns nil when the request may proceed; every
// rejection maps to a fast, typed error (429 or 503) so callers can back
// off instead of timing out.  A non-nil return means the breaker slot (if
// any) has already been released.
func (s *Server) admit(ctx context.Context, m *serverModel) error {
	if err := resilience.Fire(pointAdmit); err != nil {
		return fmt.Errorf("tango: %s admission: %w", m.name, err)
	}
	if err := m.breaker.Allow(); err != nil {
		m.shedBreaker.Add(1)
		return fmt.Errorf("tango: %s: %w", m.name, ErrDegraded)
	}
	// Past here the caller owns a breaker slot; release it on rejection.
	q, c := s.queueState(m)
	occ := float64(q) / float64(c)
	shedAt := 1.1 // high priority: only the hard queue-full bound sheds
	switch PriorityFromContext(ctx) {
	case PriorityLow:
		shedAt = shedLowAt
	case PriorityNormal:
		shedAt = shedNormalAt
	}
	if occ >= shedAt {
		m.breaker.Forgive()
		m.shedLoad.Add(1)
		return fmt.Errorf("tango: %s: %s-priority request shed at queue occupancy %d/%d: %w",
			m.name, PriorityFromContext(ctx), q, c, ErrQueueFull)
	}
	return nil
}

// recordOutcome feeds a request's terminal state to the model's breaker.
// Engine failures (failed batch runs, injected faults, internal errors)
// count against the breaker; client and load faults — shape rejections
// never reach here, and cancellations, deadline expiry, queue-full and
// shutdown say nothing about engine health — release the breaker slot
// without a verdict.
func (m *serverModel) recordOutcome(err error) {
	switch {
	case err == nil:
		m.breaker.Record(nil)
	case isClientOrLoadFault(err):
		m.breaker.Forgive()
	default:
		m.breaker.Record(err)
	}
}

// isClientOrLoadFault reports whether an error says nothing about the
// compute engine's health.
func isClientOrLoadFault(err error) bool {
	return isAny(err, context.Canceled, context.DeadlineExceeded,
		ErrQueueFull, ErrServerClosed, ErrShape)
}

func isAny(err error, targets ...error) bool {
	for _, t := range targets {
		if errors.Is(err, t) {
			return true
		}
	}
	return false
}

// HealthStatus is the server's tri-state health.
type HealthStatus string

const (
	// HealthHealthy: all breakers closed, queues below pressure.
	HealthHealthy HealthStatus = "healthy"
	// HealthDegraded: still serving, but at least one breaker is open or
	// half-open, or a queue is at shedding pressure.  Load balancers
	// should prefer other replicas but need not eject this one.
	HealthDegraded HealthStatus = "degraded"
	// HealthDraining: shutdown has begun; no new work is accepted.
	HealthDraining HealthStatus = "draining"
)

// ModelHealth is one benchmark's slice of a health report.
type ModelHealth struct {
	Breaker   string  `json:"breaker"`
	QueueLen  int     `json:"queue_len"`
	QueueCap  int     `json:"queue_cap"`
	InFlight  int64   `json:"in_flight"`
	Occupancy float64 `json:"occupancy"`
	// Resident reports whether the model's engine is loaded; a cold model
	// is healthy — it loads on first request.
	Resident bool `json:"resident"`
}

// HealthReport is the GET /healthz body: overall status, the reasons a
// non-healthy status was chosen, and per-benchmark breaker/queue state.
type HealthReport struct {
	Status     HealthStatus           `json:"status"`
	Benchmarks []string               `json:"benchmarks"`
	Reasons    []string               `json:"reasons,omitempty"`
	Models     map[string]ModelHealth `json:"models"`
}

// Health derives the server's tri-state health from breaker and queue
// state: draining once Close has begun, degraded while any breaker is
// open/half-open or any queue is at shedding pressure, healthy otherwise.
// A degraded server is alive and still serving what it can — the point of
// the resilience layer is that faults land here, not in a dead process.
func (s *Server) Health() HealthReport {
	rep := HealthReport{
		Status:     HealthHealthy,
		Benchmarks: s.Benchmarks(),
		Models:     make(map[string]ModelHealth, len(s.models)),
	}
	for _, name := range s.order {
		m := s.models[name]
		q, c := s.queueState(m)
		mh := ModelHealth{
			Breaker:  m.breaker.State().String(),
			QueueLen: q,
			QueueCap: c,
			InFlight: m.inFlight.Load(),
			Resident: m.eng.Load() != nil,
		}
		if c > 0 {
			mh.Occupancy = float64(q) / float64(c)
		}
		rep.Models[name] = mh
		if m.breaker.State() != resilience.BreakerClosed {
			rep.Reasons = append(rep.Reasons, fmt.Sprintf("%s: circuit breaker %s", name, mh.Breaker))
		}
		if mh.Occupancy >= shedNormalAt {
			rep.Reasons = append(rep.Reasons, fmt.Sprintf("%s: queue at %d/%d", name, q, c))
		}
	}
	if len(rep.Reasons) > 0 {
		rep.Status = HealthDegraded
	}
	if s.draining.Load() {
		rep.Status = HealthDraining
		rep.Reasons = append(rep.Reasons, "shutdown in progress")
	}
	return rep
}

// RetryAfter is the Retry-After hint (in seconds) attached to 429 and 503
// rejections, sized to the default breaker cooldown so clients that honor
// it return roughly when the server is ready to probe recovery.
const RetryAfter = 1 * time.Second
