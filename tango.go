// Package tango is the public API of the Tango deep-neural-network benchmark
// suite reproduction: seven DNN inference workloads (CifarNet, AlexNet,
// SqueezeNet, ResNet-50, VGGNet-16, GRU and LSTM) expressed as fundamental
// math kernels, a cycle-approximate GPU architecture simulator with
// configurable caches and warp schedulers, GPU and FPGA power models, an
// experiment harness that regenerates every table and figure of the paper's
// evaluation, and a multi-device sweep engine (Sweep) that characterizes the
// suite across the registered accelerator targets (Targets) from shared
// layer traces.
//
// Typical use:
//
//	suite := tango.NewSuite()
//	b, _ := suite.Benchmark("CifarNet")
//	class, probs, _ := b.ClassifySample(42)
//	sim, _ := b.Simulate(tango.WithL1SizeKB(128), tango.WithScheduler("lrr"))
//	fmt.Println(class, probs[class], sim.Cycles)
//
//	table, _ := tango.RunExperiment("fig2", tango.WithFastSampling())
//	fmt.Println(table)
package tango

import (
	"fmt"
	"strings"

	"tango/internal/core"
	"tango/internal/kernel"
	"tango/internal/networks"
)

// Version is the release version of the suite reproduction.
const Version = "1.0.0"

// Benchmarks returns the names of the seven workloads in suite order.
func Benchmarks() []string { return networks.Names() }

// CNNBenchmarks returns the convolutional workloads.
func CNNBenchmarks() []string { return networks.CNNNames() }

// RNNBenchmarks returns the recurrent workloads.
func RNNBenchmarks() []string { return networks.RNNNames() }

// ExtensionBenchmarks returns workloads provided beyond the paper's
// seven-network suite (currently MobileNet, which the paper lists as the next
// network under development).  They are loadable like any other benchmark but
// excluded from the figure-reproduction experiments.
func ExtensionBenchmarks() []string { return networks.ExtensionNames() }

// Suite loads and caches benchmarks.
type Suite struct {
	inner *core.Suite
}

// NewSuite returns an empty suite; benchmarks are built lazily on first use.
func NewSuite() *Suite { return &Suite{inner: core.NewSuite()} }

// Benchmark returns the named workload, building its network, weights and
// kernels on first use.
func (s *Suite) Benchmark(name string) (*Benchmark, error) {
	b, err := s.inner.Benchmark(name)
	if err != nil {
		return nil, err
	}
	return &Benchmark{inner: b}, nil
}

// All returns every workload of the suite.
func (s *Suite) All() ([]*Benchmark, error) {
	var out []*Benchmark
	for _, name := range Benchmarks() {
		b, err := s.Benchmark(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// Benchmark is one workload of the suite.
type Benchmark struct {
	inner *core.Benchmark
}

// LoadBenchmark builds a single workload without a Suite.
func LoadBenchmark(name string) (*Benchmark, error) {
	b, err := core.Load(name)
	if err != nil {
		return nil, err
	}
	return &Benchmark{inner: b}, nil
}

// Name returns the benchmark name.
func (b *Benchmark) Name() string { return b.inner.Name() }

// Kind returns "CNN" or "RNN".
func (b *Benchmark) Kind() string { return b.inner.Kind().String() }

// Description summarizes a benchmark's structure and footprint.
type Description struct {
	// Name and Kind identify the workload.
	Name string
	Kind string
	// InputShape is the per-inference input tensor shape (CHW for CNNs,
	// feature count per time step for RNNs).
	InputShape []int
	// Classes is the classifier width (0 for regression outputs).
	Classes int
	// Layers is the number of layers / kernels.
	Layers int
	// Parameters is the number of trainable parameters.
	Parameters int64
	// WeightBytes and ActivationBytes are the device-memory demands.
	WeightBytes     int64
	ActivationBytes int64
}

// Describe returns the benchmark's structural summary.
func (b *Benchmark) Describe() (Description, error) {
	n := b.inner.Network
	specs, err := n.WeightSpecs()
	if err != nil {
		return Description{}, err
	}
	var params int64
	for _, s := range specs {
		params += int64(s.Count)
	}
	wb, err := n.WeightBytes()
	if err != nil {
		return Description{}, err
	}
	ab, err := n.ActivationBytes()
	if err != nil {
		return Description{}, err
	}
	classes := n.NumClasses
	return Description{
		Name:            n.Name,
		Kind:            n.Kind.String(),
		InputShape:      n.InputShape,
		Classes:         classes,
		Layers:          len(n.Layers),
		Parameters:      params,
		WeightBytes:     wb,
		ActivationBytes: ab,
	}, nil
}

// Layers returns the layer names in execution order.
func (b *Benchmark) Layers() []string {
	out := make([]string, len(b.inner.Network.Layers))
	for i := range b.inner.Network.Layers {
		out[i] = b.inner.Network.Layers[i].Name
	}
	return out
}

// KernelInfo describes one lowered kernel (a Table III row).
type KernelInfo struct {
	Layer     string
	Class     string
	Grid      [3]int
	Block     [3]int
	Registers int
	SharedMem int
	ConstMem  int
	// DynamicInstructions is the kernel's total dynamic instruction count.
	DynamicInstructions int64
}

// Dialects returns the source languages the original suite provides for this
// benchmark: every network ships CUDA C kernels, and CifarNet and AlexNet
// additionally ship OpenCL kernels for the FPGA flow.
func (b *Benchmark) Dialects() []string {
	var out []string
	for _, d := range kernel.Dialects(b.Name()) {
		out = append(out, string(d))
	}
	return out
}

// Kernels returns the lowered kernel descriptions in execution order.
func (b *Benchmark) Kernels() []KernelInfo {
	out := make([]KernelInfo, len(b.inner.Kernels))
	for i, k := range b.inner.Kernels {
		out[i] = KernelInfo{
			Layer:               k.LayerName,
			Class:               k.Class,
			Grid:                k.Launch.Grid,
			Block:               k.Launch.Block,
			Registers:           k.Launch.Regs,
			SharedMem:           k.Launch.SmemBytes,
			ConstMem:            k.Launch.CmemBytes,
			DynamicInstructions: k.DynamicInstructions(),
		}
	}
	return out
}

// Disassemble returns a PTX-like listing of the thread program generated for
// one layer, the equivalent of inspecting the original suite's kernel source.
func (b *Benchmark) Disassemble(layer string) (string, error) {
	for _, k := range b.inner.Kernels {
		if k.LayerName == layer {
			var sb strings.Builder
			if err := kernel.WriteDisassembly(&sb, k); err != nil {
				return "", err
			}
			return sb.String(), nil
		}
	}
	return "", fmt.Errorf("tango: %s has no layer %q", b.Name(), layer)
}

// ensureKind verifies the benchmark kind for inference helpers.
func (b *Benchmark) ensureKind(kind networks.Kind, op string) error {
	if b.inner.Kind() != kind {
		return fmt.Errorf("tango: %s is a %s benchmark; %s is not applicable", b.Name(), b.Kind(), op)
	}
	return nil
}
