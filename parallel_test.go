package tango_test

import (
	"reflect"
	"testing"

	"tango"
)

// TestSimulateParallelDeterminism asserts that kernel-parallel simulation of
// every network in the suite produces results identical to serial execution.
func TestSimulateParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism check skipped in -short mode")
	}
	for _, name := range tango.Benchmarks() {
		bm, err := tango.LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := bm.Simulate(tango.WithFastSampling())
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		parallel, err := bm.Simulate(tango.WithFastSampling(), tango.WithParallelism(8))
		if err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: parallel simulation result differs from serial", name)
		}
	}
}

// TestRunAllParallelDeterminism asserts that a parallel experiment session
// renders every table of the full report byte-identically to a serial one,
// across all seven networks under fast sampling.
func TestRunAllParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment matrix skipped in -short mode")
	}
	serialTables, err := tango.NewExperimentSession(tango.WithFastExperimentSampling()).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	// The isolated cache forces the parallel session to genuinely recompute
	// its matrix concurrently — without it the session would render from the
	// process-wide shared store and the comparison would be vacuous.
	parallelTables, err := tango.NewExperimentSession(
		tango.WithFastExperimentSampling(), tango.WithExperimentParallelism(8),
		tango.WithIsolatedCache()).RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(serialTables) != len(parallelTables) {
		t.Fatalf("table counts differ: %d vs %d", len(serialTables), len(parallelTables))
	}
	for i := range serialTables {
		a, b := serialTables[i].String(), parallelTables[i].String()
		if a != b {
			t.Errorf("%s: parallel rendering differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				serialTables[i].ID, a, b)
		}
	}
}
