package tango

import (
	"runtime"

	"tango/internal/bench"
	"tango/internal/distcache"
	"tango/internal/gpusim"
	"tango/internal/report"
	"tango/internal/target"
)

// Table is a rendered experiment result: the rows or series of one of the
// paper's tables or figures.
type Table = report.Table

// ExperimentInfo identifies one reproducible table or figure.
type ExperimentInfo struct {
	// ID is the experiment key, e.g. "table3" or "fig2".
	ID string
	// Title summarizes what the experiment reports.
	Title string
}

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range bench.Experiments() {
		out = append(out, ExperimentInfo{ID: e.ID, Title: e.Title})
	}
	return out
}

// experimentSettings collects experiment options.
type experimentSettings struct {
	opts bench.Options
}

// ExperimentOption configures RunExperiment and NewExperimentSession.
type ExperimentOption func(*experimentSettings)

// WithNetworks restricts an experiment to a subset of benchmarks (useful for
// quick runs).
func WithNetworks(names ...string) ExperimentOption {
	return func(s *experimentSettings) { s.opts.Networks = names }
}

// WithFastExperimentSampling selects coarse simulator sampling for quick
// experiment runs.
func WithFastExperimentSampling() ExperimentOption {
	return func(s *experimentSettings) { s.opts.Sampling = gpusim.FastSampling() }
}

// WithExperimentParallelism computes the session's network x configuration
// simulation matrix on n concurrent workers before rendering; n <= 0 selects
// one worker per available CPU (GOMAXPROCS).  Rendered tables are identical
// to a serial run.
func WithExperimentParallelism(n int) ExperimentOption {
	return func(s *experimentSettings) {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.opts.Parallelism = n
	}
}

// WithIsolatedCache gives the session a private trace/run store instead of
// the process-wide shared one, so it recomputes every cell from scratch.
// Sessions share the process store by default — repeated sessions reuse each
// other's traces and runs (results are deterministic either way); isolation
// is for benchmarking the pipeline itself and for tests.
func WithIsolatedCache() ExperimentOption {
	return func(s *experimentSettings) { s.opts.Store = target.NewStore() }
}

// WithDiskCache gives the session a private run store backed by a
// persistent on-disk cache at dir: runs computed in one process are
// replayed from disk in the next, so warm sessions skip the simulator
// entirely.  Cache failures are soft — an unopenable directory leaves
// the store memory-only, and a corrupt or stale record is recomputed,
// never trusted.  The TANGO_CACHE_DIR environment variable attaches the
// same cache to the default process-wide store instead.
func WithDiskCache(dir string) ExperimentOption {
	return WithDiskCacheLimit(dir, 0)
}

// WithDiskCacheLimit is WithDiskCache with a size bound: the disk tier is
// kept at or under maxMB MiB by evicting the oldest records (by file
// modification time) whenever a write pushes it past the bound.  maxMB <= 0
// leaves the tier unbounded.
func WithDiskCacheLimit(dir string, maxMB int) ExperimentOption {
	return func(s *experimentSettings) {
		st := target.NewStore()
		if d, err := distcache.Open(dir); err == nil {
			if maxMB > 0 {
				d.SetMaxBytes(int64(maxMB) << 20)
			}
			st.SetDisk(d)
		}
		s.opts.Store = st
	}
}

// ExperimentSession caches simulation results across experiments so a full
// report run simulates each configuration once.
type ExperimentSession struct {
	inner *bench.Session
}

// NewExperimentSession creates a session for running multiple experiments.
func NewExperimentSession(opts ...ExperimentOption) *ExperimentSession {
	attachEnvDiskCache()
	var s experimentSettings
	for _, opt := range opts {
		opt(&s)
	}
	return &ExperimentSession{inner: bench.NewSession(s.opts)}
}

// Run executes one experiment by id ("table1".."table4", "fig1".."fig16").
func (s *ExperimentSession) Run(id string) (*Table, error) {
	return s.inner.Run(id)
}

// Prewarm computes the session's full network x configuration simulation
// matrix up front using the configured parallelism, so subsequent Run calls
// render from cache.  Simulation failures are also left for Run to report in
// deterministic order, exactly as a serial session would.
func (s *ExperimentSession) Prewarm() {
	if n := s.inner.Options().Parallelism; n > 1 {
		_ = s.inner.Prewarm(n)
	}
}

// PrewarmExperiment warms only the simulation cells the given experiment
// consumes — the right call before a single Run, where Prewarm would
// simulate the whole report matrix.
func (s *ExperimentSession) PrewarmExperiment(id string) {
	if n := s.inner.Options().Parallelism; n > 1 {
		_ = s.inner.PrewarmFor(id, n)
	}
}

// RunAll executes every experiment in paper order.
func (s *ExperimentSession) RunAll() ([]*Table, error) {
	return s.inner.RunAll()
}

// RunExperiment executes a single experiment with a fresh session.
func RunExperiment(id string, opts ...ExperimentOption) (*Table, error) {
	return NewExperimentSession(opts...).Run(id)
}
