package tango

import (
	"fmt"

	"tango/internal/networks"
	"tango/internal/tensor"
)

// This file implements batched throughput inference: ClassifyBatch and
// ForecastBatch push N samples through the native compute engine in one
// pass, folding the batch into the engine's GEMM dimensions so weight
// traffic and staging work are amortized across the batch.  Batched results
// are bit-identical to running each sample through Classify / Forecast on
// the default numerics tier; under WithFastMath / WithInt8 the contract is
// top-1 class agreement plus a small relative-error bound instead (batched
// and single-sample fast runs tile columns differently).

// BatchClassification is the result of one sample of a batched CNN run.
// Unlike Classification, it omits the per-layer activation map: batched runs
// keep only the batched layer outputs, not per-sample views of them.
type BatchClassification struct {
	// Class is the arg-max class index.
	Class int
	// Probabilities is the softmax output over all classes.
	Probabilities []float32
}

// ClassifyBatch runs a CNN benchmark natively on a batch of CHW images,
// each a flat float32 slice (length = product of the input shape).  All
// images run through the compute engine together: convolutions see every
// output pixel of every image in one GEMM and fully-connected layers
// compute the whole batch per weight pass, which is what makes sustained
// throughput scale with batch size.
//
// On the default numerics tier, results are bit-identical to calling
// Classify on each image, for any batch size and any WithParallelism worker
// count; under WithFastMath / WithInt8 the batch preserves each sample's
// top-1 class within the fast tier's tolerance instead.  An empty batch or
// images of the wrong length return an error.
func (b *Benchmark) ClassifyBatch(images [][]float32, opts ...SimOption) ([]BatchClassification, error) {
	if err := b.ensureKind(networks.KindCNN, "ClassifyBatch"); err != nil {
		return nil, err
	}
	if len(images) == 0 {
		return nil, fmt.Errorf("tango: %s: %w: empty batch", b.Name(), tensor.ErrShape)
	}
	shape := b.inner.Network.InputShape
	want := 1
	for _, d := range shape {
		want *= d
	}
	batch := tensor.New(append([]int{len(images)}, shape...)...)
	data := batch.Data()
	for i, img := range images {
		if len(img) != want {
			return nil, fmt.Errorf("tango: %s: %w: image %d has %d elements, want %d (input shape %v)",
				b.Name(), tensor.ErrShape, i, len(img), want, shape)
		}
		copy(data[i*want:(i+1)*want], img)
	}

	workers, mode, err := nativeSettings(opts)
	if err != nil {
		return nil, err
	}
	s := b.inner.AcquireScratchNumerics(workers, mode)
	defer b.inner.ReleaseScratch(s)
	res, err := b.inner.RunBatchScratch(batch, s)
	if err != nil {
		return nil, err
	}
	return batchClassifications(res), nil
}

// batchClassifications copies a batched result out of its scratch-aliased
// storage into per-sample classifications; it must run before the scratch is
// released.
func batchClassifications(res *networks.BatchResult) []BatchClassification {
	classes := res.Output.Len() / res.N
	out := make([]BatchClassification, res.N)
	probs := make([]float32, res.Output.Len())
	copy(probs, res.Output.Data())
	for i := range out {
		out[i] = BatchClassification{
			Class:         res.PredictedClasses[i],
			Probabilities: probs[i*classes : (i+1)*classes],
		}
	}
	return out
}

// ClassifySampleBatch runs a CNN benchmark on a batch of n deterministic
// synthetic sample images; sample i is bit-identical to the input of
// ClassifySample(seed + i).
func (b *Benchmark) ClassifySampleBatch(seed uint64, n int, opts ...SimOption) ([]BatchClassification, error) {
	if err := b.ensureKind(networks.KindCNN, "ClassifySampleBatch"); err != nil {
		return nil, err
	}
	batch, err := b.inner.SampleInputBatch(seed, n)
	if err != nil {
		return nil, err
	}
	workers, mode, err := nativeSettings(opts)
	if err != nil {
		return nil, err
	}
	s := b.inner.AcquireScratchNumerics(workers, mode)
	defer b.inner.ReleaseScratch(s)
	res, err := b.inner.RunBatchScratch(batch, s)
	if err != nil {
		return nil, err
	}
	return batchClassifications(res), nil
}

// ForecastBatch runs an RNN benchmark natively on a batch of histories of
// scalar observations and returns one predicted next value per history.
// All histories must have the same length (the recurrent gates run as one
// batched GEMM per time step, so the batch advances in lockstep); ragged
// batches are rejected.  Results are bit-identical to calling Forecast on
// each history, for any batch size and worker count.
func (b *Benchmark) ForecastBatch(histories [][]float64, opts ...SimOption) ([]float64, error) {
	if err := b.ensureKind(networks.KindRNN, "ForecastBatch"); err != nil {
		return nil, err
	}
	if len(histories) == 0 {
		return nil, fmt.Errorf("tango: %s: %w: empty batch", b.Name(), tensor.ErrShape)
	}
	steps := len(histories[0])
	if steps == 0 {
		return nil, fmt.Errorf("tango: %s: %w: history 0 is empty", b.Name(), tensor.ErrShape)
	}
	for i, h := range histories {
		if len(h) != steps {
			return nil, fmt.Errorf("tango: %s: %w: ragged batch: history %d has %d steps, history 0 has %d",
				b.Name(), tensor.ErrShape, i, len(h), steps)
		}
	}

	n := len(histories)
	inSize := b.inner.Network.InputShape[0]
	seq := tensor.New(steps, n, inSize)
	data := seq.Data()
	for i, h := range histories {
		for t, v := range h {
			row := data[(t*n+i)*inSize : (t*n+i+1)*inSize]
			fv := float32(v)
			for j := range row {
				row[j] = fv
			}
		}
	}

	workers, mode, err := nativeSettings(opts)
	if err != nil {
		return nil, err
	}
	s := b.inner.AcquireScratchNumerics(workers, mode)
	defer b.inner.ReleaseScratch(s)
	res, err := b.inner.RunSequenceBatchScratch(seq, s)
	if err != nil {
		return nil, err
	}
	outF := res.Output.Len() / n
	preds := make([]float64, n)
	for i := range preds {
		preds[i] = float64(res.Output.Data()[i*outF])
	}
	return preds, nil
}
