package tango

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// This file is the HTTP frontend of the serving subsystem (stdlib net/http
// only).  Handler exposes a Server over five endpoints:
//
//	POST /v1/classify  {"benchmark":"CifarNet","image":[...]}   -> {"class":..,"probabilities":[...]}
//	POST /v1/forecast  {"benchmark":"LSTM","history":[...]}     -> {"prediction":..}
//	GET  /v1/stats                                              -> ServerStats JSON
//	GET  /healthz                                               -> HealthReport JSON
//	GET  /metrics                                               -> Prometheus text exposition
//
// GET /metrics serves the Prometheus text format (version 0.0.4) for
// scrapers.  The JSON stats blob it served before the v1 surface lives at
// GET /v1/stats; for one release, /metrics with an Accept header naming
// application/json still answers the old JSON body so existing collectors
// keep working while they migrate (deprecated — scrape /v1/stats instead).
//
// Classify requests may pass {"seed":N} instead of an image and forecast
// requests {"seed":N} instead of a history to use the benchmark's
// deterministic synthetic sample input (handy for load generators: the
// client can recompute the exact input, and the response stays bit-identical
// to a local Classify/Forecast of that sample).
//
// Inference requests may carry an X-Priority header ("low", "normal",
// "high") classifying them for admission: under queue pressure the server
// sheds low first, then normal; high is only rejected by a full queue.
//
// Error mapping: shape errors (wrapped ErrShape, including an empty body)
// are 400, unknown benchmarks 404, queue-full backpressure and shed load
// 429 (with Retry-After), an open circuit breaker or draining server 503
// (with Retry-After), everything else 500.  Error bodies are
// {"error":"..."}.
//
// GET /healthz is tri-state: "healthy" and "degraded" both answer 200 —
// a degraded server (breaker open, queues at pressure) is still serving
// what it can and must not be killed for it — while "draining" answers
// 503 so load balancers stop routing during shutdown.

// maxRequestBody bounds request JSON.  Bodies are fully buffered before
// decoding, so the bound is sized to the workload, not generously: the
// largest valid image (VGGNet, 3x224x224 float32) is ~1.7 MB of JSON text
// at full float precision; 8 MB leaves headroom without letting a burst of
// oversized posts buffer gigabytes.
const maxRequestBody = 8 << 20

// classifyRequest is the POST /v1/classify body.
type classifyRequest struct {
	Benchmark string    `json:"benchmark"`
	Image     []float32 `json:"image,omitempty"`
	Seed      *uint64   `json:"seed,omitempty"`
}

// classifyResponse is the POST /v1/classify success body.
type classifyResponse struct {
	Benchmark     string    `json:"benchmark"`
	Class         int       `json:"class"`
	Probabilities []float32 `json:"probabilities"`
}

// forecastRequest is the POST /v1/forecast body.
type forecastRequest struct {
	Benchmark string    `json:"benchmark"`
	History   []float64 `json:"history,omitempty"`
	Seed      *uint64   `json:"seed,omitempty"`
}

// forecastResponse is the POST /v1/forecast success body.
type forecastResponse struct {
	Benchmark  string  `json:"benchmark"`
	Prediction float64 `json:"prediction"`
}

// Handler returns the Server's HTTP API as a stdlib http.Handler, ready to
// mount on any mux or http.Server.  The tango-serve binary is a thin wrapper
// around it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/classify", s.handleClassify)
	mux.HandleFunc("POST /v1/forecast", s.handleForecast)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// decodeRequest reads and unmarshals a request body into v.  A zero-length
// body is a shape error (wrapped ErrShape -> 400), matching how the compute
// engine rejects empty inputs.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, err) // 413 via writeError
		} else {
			// Truncated/aborted uploads are client faults, not 500s.
			writeError(w, fmt.Errorf("tango: %w: reading request body: %v", ErrShape, err))
		}
		return false
	}
	if len(body) == 0 {
		writeError(w, fmt.Errorf("tango: %w: empty request body", ErrShape))
		return false
	}
	if err := json.Unmarshal(body, v); err != nil {
		writeError(w, fmt.Errorf("tango: %w: invalid request JSON: %v", ErrShape, err))
		return false
	}
	return true
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	var req classifyRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	image := req.Image
	if image == nil && req.Seed != nil {
		var err error
		if image, err = s.sampleImage(req.Benchmark, *req.Seed); err != nil {
			writeError(w, err)
			return
		}
	}
	ctx := WithPriority(r.Context(), ParsePriority(r.Header.Get("X-Priority")))
	res, err := s.Classify(ctx, req.Benchmark, image)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, classifyResponse{
		Benchmark:     req.Benchmark,
		Class:         res.Class,
		Probabilities: res.Probabilities,
	})
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	var req forecastRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	history := req.History
	if history == nil && req.Seed != nil {
		var err error
		if history, err = s.sampleHistory(req.Benchmark, *req.Seed); err != nil {
			writeError(w, err)
			return
		}
	}
	ctx := WithPriority(r.Context(), ParsePriority(r.Header.Get("X-Priority")))
	pred, err := s.Forecast(ctx, req.Benchmark, history)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, forecastResponse{Benchmark: req.Benchmark, Prediction: pred})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := s.Health()
	status := http.StatusOK // healthy AND degraded: degraded is not dead
	if rep.Status == HealthDraining {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rep)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// One-release compatibility shim: the pre-v1 API served the JSON stats
	// blob here.  An explicit JSON Accept keeps old collectors working;
	// everything else (including Prometheus scrapers, whose Accept names
	// the exposition formats) gets the text format.
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, s.Stats())
		return
	}
	w.Header().Set("Content-Type", prometheusContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = io.WriteString(w, s.metricsText())
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeError maps a serving error to its HTTP status and writes the
// {"error":...} body.  Backpressure rejections (429) and degraded/closed
// rejections (503) carry a Retry-After hint so well-behaved clients back
// off for roughly a breaker cooldown instead of hammering a loaded server.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var tooLarge *http.MaxBytesError
	switch {
	case errors.As(err, &tooLarge):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrShape):
		status = http.StatusBadRequest
	case errors.Is(err, ErrNotServed):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDegraded):
		// Breaker open: fail fast, invite the client back after cooldown.
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrServerClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or timed out while queued.
		status = http.StatusServiceUnavailable
	}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(int(RetryAfter.Seconds())))
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
