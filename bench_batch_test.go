// Batched-throughput benchmarks: images/sec of ClassifyBatch at several
// batch sizes versus sequential single-sample Classify.  These are the key
// benchmarks the CI bench-regression job tracks (see cmd/tango-benchdiff).
package tango_test

import (
	"testing"

	"tango"
)

// benchmarkClassifyBatch measures one batched classification pass of size n
// and reports throughput in images/sec.
func benchmarkClassifyBatch(b *testing.B, name string, n int) {
	bm, err := tango.LoadBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	images := make([][]float32, n)
	for i := range images {
		img, _, err := bm.SampleImage(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		images[i] = img
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.ClassifyBatch(images); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

// benchmarkClassifySequential is the batched benchmarks' baseline: the same
// n images pushed one at a time through the single-sample path.
func benchmarkClassifySequential(b *testing.B, name string, n int) {
	bm, err := tango.LoadBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	images := make([][]float32, n)
	for i := range images {
		img, _, err := bm.SampleImage(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		images[i] = img
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, img := range images {
			if _, err := bm.Classify(img); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

func BenchmarkClassifyAlexNetBatch1(b *testing.B) { benchmarkClassifyBatch(b, "AlexNet", 1) }
func BenchmarkClassifyAlexNetBatch4(b *testing.B) { benchmarkClassifyBatch(b, "AlexNet", 4) }
func BenchmarkClassifyAlexNetBatch8(b *testing.B) { benchmarkClassifyBatch(b, "AlexNet", 8) }

// BenchmarkClassifyAlexNetSequential8 is the explicit baseline for
// BenchmarkClassifyAlexNetBatch8: eight sequential single-sample Classify
// calls on one thread.
func BenchmarkClassifyAlexNetSequential8(b *testing.B) { benchmarkClassifySequential(b, "AlexNet", 8) }

func BenchmarkClassifyCifarNetBatch8(b *testing.B)  { benchmarkClassifyBatch(b, "CifarNet", 8) }
func BenchmarkClassifyCifarNetBatch32(b *testing.B) { benchmarkClassifyBatch(b, "CifarNet", 32) }

// BenchmarkForecastLSTMBatch32 tracks batched RNN throughput.
func BenchmarkForecastLSTMBatch32(b *testing.B) {
	bm, err := tango.LoadBenchmark("LSTM")
	if err != nil {
		b.Fatal(err)
	}
	const n = 32
	histories := make([][]float64, n)
	for i := range histories {
		h, err := bm.SampleHistory(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		histories[i] = h
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.ForecastBatch(histories); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "forecasts/sec")
}

// TestClassifyBatch8Speedup enforces the batched-throughput acceptance bar:
// one ClassifyBatch of 8 AlexNet images must deliver at least 2x the
// images/sec of 8 sequential single-thread Classify calls.  Skipped in
// -short mode (it times full AlexNet inference).
func TestClassifyBatch8Speedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	bm, err := tango.LoadBenchmark("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	images := make([][]float32, n)
	for i := range images {
		img, _, err := bm.SampleImage(uint64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		images[i] = img
	}
	// Warm both paths (plan resolution, scratch growth).
	if _, err := bm.ClassifyBatch(images[:2]); err != nil {
		t.Fatal(err)
	}
	if _, err := bm.Classify(images[0]); err != nil {
		t.Fatal(err)
	}

	batchRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bm.ClassifyBatch(images); err != nil {
				b.Fatal(err)
			}
		}
	})
	seqRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, img := range images {
				if _, err := bm.Classify(img); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	batchNs := float64(batchRes.NsPerOp())
	seqNs := float64(seqRes.NsPerOp())
	speedup := seqNs / batchNs
	t.Logf("batch8 %.0f ms vs sequential %.0f ms: %.2fx images/sec", batchNs/1e6, seqNs/1e6, speedup)
	if speedup < 2 {
		t.Fatalf("batched throughput %.2fx sequential, want >= 2x", speedup)
	}
}
