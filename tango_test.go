package tango_test

import (
	"math"
	"strings"
	"testing"

	"tango"
)

func TestBenchmarkNames(t *testing.T) {
	names := tango.Benchmarks()
	if len(names) != 7 {
		t.Fatalf("suite should expose 7 benchmarks, got %d: %v", len(names), names)
	}
	if len(tango.CNNBenchmarks())+len(tango.RNNBenchmarks()) != 7 {
		t.Error("CNN + RNN benchmarks should partition the suite")
	}
	if tango.Version == "" {
		t.Error("version should be set")
	}
}

func TestSuiteAndLoadBenchmark(t *testing.T) {
	s := tango.NewSuite()
	b, err := s.Benchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "CifarNet" || b.Kind() != "CNN" {
		t.Errorf("identity: %s/%s", b.Name(), b.Kind())
	}
	if _, err := s.Benchmark("nope"); err == nil {
		t.Error("unknown benchmark should fail")
	}
	direct, err := tango.LoadBenchmark("GRU")
	if err != nil {
		t.Fatal(err)
	}
	if direct.Kind() != "RNN" {
		t.Errorf("GRU kind = %s", direct.Kind())
	}
}

func TestDescribe(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	d, err := b.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "CifarNet" || d.Kind != "CNN" {
		t.Errorf("describe identity: %+v", d)
	}
	if len(d.InputShape) != 3 || d.InputShape[0] != 3 || d.InputShape[1] != 32 {
		t.Errorf("input shape %v", d.InputShape)
	}
	if d.Classes != 9 {
		t.Errorf("classes = %d, want 9", d.Classes)
	}
	if d.Layers != 9 {
		t.Errorf("layers = %d, want 9", d.Layers)
	}
	if d.Parameters <= 0 || d.WeightBytes != d.Parameters*4 {
		t.Errorf("parameter accounting wrong: %+v", d)
	}
	if len(b.Layers()) != d.Layers {
		t.Error("Layers() length should match Describe().Layers")
	}
}

func TestKernelsMatchTableIII(t *testing.T) {
	b, err := tango.LoadBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	ks := b.Kernels()
	if len(ks) != 2 {
		t.Fatalf("LSTM should lower to 2 kernels, got %d", len(ks))
	}
	if ks[0].Block != [3]int{100, 1, 1} {
		t.Errorf("LSTM block = %v, want (100,1,1) per Table III", ks[0].Block)
	}
	if ks[0].SharedMem != 936 || ks[0].ConstMem != 60 {
		t.Errorf("LSTM smem/cmem = %d/%d, want 936/60", ks[0].SharedMem, ks[0].ConstMem)
	}
	if ks[0].DynamicInstructions <= 0 {
		t.Error("dynamic instruction count should be positive")
	}
}

func TestClassifySampleAndExplicitInput(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.ClassifySample(7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Class < 0 || res.Class >= 9 {
		t.Errorf("class %d out of range", res.Class)
	}
	if len(res.Probabilities) != 9 {
		t.Errorf("probabilities length %d", len(res.Probabilities))
	}
	sum := 0.0
	for _, p := range res.Probabilities {
		sum += float64(p)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if len(res.LayerActivations) != 9 {
		t.Errorf("layer activations %d, want 9", len(res.LayerActivations))
	}

	// Explicit input path must agree with the sample helper.
	img, shape, err := b.SampleImage(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(shape) != 3 {
		t.Errorf("sample image shape %v", shape)
	}
	res2, err := b.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Class != res.Class {
		t.Error("Classify(SampleImage) should match ClassifySample")
	}
	if _, err := b.Classify([]float32{1, 2, 3}); err == nil {
		t.Error("wrong-size image should fail")
	}
	if _, err := b.Forecast([]float64{1, 2}); err == nil {
		t.Error("Forecast on a CNN should fail")
	}
	if _, err := b.SampleHistory(1); err == nil {
		t.Error("SampleHistory on a CNN should fail")
	}
}

func TestForecast(t *testing.T) {
	b, err := tango.LoadBenchmark("GRU")
	if err != nil {
		t.Fatal(err)
	}
	pred, err := b.Forecast([]float64{0.41, 0.43})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) {
		t.Errorf("prediction %v", pred)
	}
	pred2, err := b.ForecastSample(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pred2) {
		t.Error("sample forecast is NaN")
	}
	hist, err := b.SampleHistory(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 {
		t.Errorf("sample history length %d, want 2", len(hist))
	}
	if _, err := b.Forecast(nil); err == nil {
		t.Error("empty history should fail")
	}
	if _, err := b.Classify([]float32{1}); err == nil {
		t.Error("Classify on an RNN should fail")
	}
	if _, err := b.ClassifySample(1); err == nil {
		t.Error("ClassifySample on an RNN should fail")
	}
	if _, _, err := b.SampleImage(1); err == nil {
		t.Error("SampleImage on an RNN should fail")
	}
}

func TestSimulateOptions(t *testing.T) {
	b, err := tango.LoadBenchmark("GRU")
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Simulate(tango.WithFastSampling())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 || res.Instructions <= 0 {
		t.Errorf("implausible simulation result: %+v", res)
	}
	if res.PeakWatts <= 0 || res.AvgWatts <= 0 || res.EnergyJoules <= 0 {
		t.Error("power results missing")
	}
	if res.Device == "" || res.Network != "GRU" {
		t.Error("identity fields missing")
	}
	if len(res.Layers) != 2 {
		t.Errorf("layer results %d, want 2", len(res.Layers))
	}
	if len(res.StallShares) == 0 || len(res.OpShares) == 0 {
		t.Error("stall/op shares missing")
	}
	if res.IntegerTypeShare <= 0 || res.IntegerTypeShare >= 1 {
		t.Errorf("integer share %v out of range", res.IntegerTypeShare)
	}

	// Option validation.
	if _, err := b.Simulate(tango.WithDevice("bogus")); err == nil {
		t.Error("unknown device should fail")
	}
	if _, err := b.Simulate(tango.WithScheduler("fifo")); err == nil {
		t.Error("unknown scheduler should fail")
	}
	if _, err := b.Simulate(tango.WithL1SizeKB(-1)); err == nil {
		t.Error("negative L1 size should fail")
	}

	// TX1 should be slower than the default Pascal device.
	tx1, err := b.Simulate(tango.WithDevice("TX1"), tango.WithFastSampling())
	if err != nil {
		t.Fatal(err)
	}
	if tx1.Seconds <= res.Seconds {
		t.Errorf("TX1 (%.6fs) should be slower than GP102 (%.6fs)", tx1.Seconds, res.Seconds)
	}
	// Scheduler and cache options should run.
	if _, err := b.Simulate(tango.WithScheduler("lrr"), tango.WithL1SizeKB(0), tango.WithFastSampling()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Simulate(tango.WithExhaustiveSimulation()); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsAPI(t *testing.T) {
	exps := tango.Experiments()
	if len(exps) != 20 {
		t.Fatalf("expected 20 experiments, got %d", len(exps))
	}
	tab, err := tango.RunExperiment("table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tab.String(), "Pascal") {
		t.Error("table2 should mention the Pascal simulator configuration")
	}
	session := tango.NewExperimentSession(
		tango.WithNetworks("GRU", "CifarNet"),
		tango.WithFastExperimentSampling(),
	)
	fig, err := session.Run("fig11")
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Errorf("fig11 restricted to 2 networks, got %d rows", len(fig.Rows))
	}
	if _, err := session.Run("fig999"); err == nil {
		t.Error("unknown experiment should fail")
	}
}
