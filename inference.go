package tango

import (
	"fmt"
	"os"

	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/tensor"
)

// Classification is the result of running a CNN benchmark on one image.
type Classification struct {
	// Class is the arg-max class index.
	Class int
	// Probabilities is the softmax output over all classes.
	Probabilities []float32
	// LayerActivations maps layer names to their output element counts,
	// useful for inspecting the network's data flow.
	LayerActivations map[string]int
}

// nativeSettings extracts the worker count and numerics tier for the native
// compute engine from inference options.  Native inference reuses the
// WithParallelism knob and honors WithFastMath / WithInt8 /
// WithReferenceNumerics; the remaining options configure the simulator and
// have no effect on native runs.  When no numerics option is passed, the
// TANGO_NUMERICS environment variable ("reference", "fast", "int8") selects
// the default tier.
func nativeSettings(opts []SimOption) (int, nn.Numerics, error) {
	var settings simSettings
	for _, opt := range opts {
		if err := opt(&settings); err != nil {
			return 0, 0, err
		}
	}
	workers := settings.parallelism
	if workers < 1 {
		workers = 1
	}
	mode := settings.numerics
	if !settings.numericsSet {
		var err error
		if mode, err = nn.ParseNumerics(os.Getenv("TANGO_NUMERICS")); err != nil {
			return 0, 0, fmt.Errorf("tango: TANGO_NUMERICS: %w", err)
		}
	}
	return workers, mode, nil
}

// Classify runs a CNN benchmark natively on a CHW image supplied as a flat
// float32 slice (length = product of the input shape).
//
// The run executes on the native compute engine (im2col + blocked GEMM with
// pooled scratch arenas).  WithParallelism selects the engine's worker
// count; results are bit-identical for any worker count.  WithFastMath and
// WithInt8 opt into the fast-numerics tiers, which trade the bit-exactness
// contract for throughput (top-1 class is preserved; see those options).
// Other simulation options are accepted but have no effect on native runs.
func (b *Benchmark) Classify(image []float32, opts ...SimOption) (*Classification, error) {
	if err := b.ensureKind(networks.KindCNN, "Classify"); err != nil {
		return nil, err
	}
	shape := b.inner.Network.InputShape
	in, err := tensor.FromSlice(image, shape...)
	if err != nil {
		return nil, fmt.Errorf("tango: %s expects a %v input: %w", b.Name(), shape, err)
	}
	return b.classifyTensor(in, opts)
}

// ClassifySample runs a CNN benchmark on the deterministic synthetic sample
// input standing in for the paper's reference image (Table I).
func (b *Benchmark) ClassifySample(seed uint64, opts ...SimOption) (*Classification, error) {
	if err := b.ensureKind(networks.KindCNN, "ClassifySample"); err != nil {
		return nil, err
	}
	in, err := b.inner.SampleInput(seed)
	if err != nil {
		return nil, err
	}
	return b.classifyTensor(in, opts)
}

// classifyTensor runs the engine on a pooled scratch and copies the result
// out before the scratch (whose arena the result aliases) is released.
func (b *Benchmark) classifyTensor(in *tensor.Tensor, opts []SimOption) (*Classification, error) {
	workers, mode, err := nativeSettings(opts)
	if err != nil {
		return nil, err
	}
	s := b.inner.AcquireScratchNumerics(workers, mode)
	defer b.inner.ReleaseScratch(s)
	res, err := b.inner.RunInferenceScratch(in, s)
	if err != nil {
		return nil, err
	}
	return b.classification(res)
}

func (b *Benchmark) classification(res *networks.Result) (*Classification, error) {
	probs := make([]float32, res.Output.Len())
	copy(probs, res.Output.Data())
	acts := make(map[string]int, len(res.LayerOutputs))
	for i, out := range res.LayerOutputs {
		if out != nil {
			acts[b.inner.Network.Layers[i].Name] = out.Len()
		}
	}
	return &Classification{
		Class:            res.PredictedClass,
		Probabilities:    probs,
		LayerActivations: acts,
	}, nil
}

// Forecast runs an RNN benchmark natively on a history of scalar observations
// (e.g. normalized daily prices) and returns the predicted next value.
// WithParallelism selects the compute engine's worker count, as in Classify.
func (b *Benchmark) Forecast(history []float64, opts ...SimOption) (float64, error) {
	if err := b.ensureKind(networks.KindRNN, "Forecast"); err != nil {
		return 0, err
	}
	if len(history) == 0 {
		return 0, fmt.Errorf("tango: %s needs a non-empty history", b.Name())
	}
	inSize := b.inner.Network.InputShape[0]
	seq := make([]*tensor.Tensor, len(history))
	for i, v := range history {
		x := tensor.New(inSize)
		x.Fill(float32(v))
		seq[i] = x
	}
	return b.forecastSequence(seq, opts)
}

// ForecastSample runs an RNN benchmark on the deterministic synthetic price
// sequence standing in for the paper's bitcoin price history (Table I).
func (b *Benchmark) ForecastSample(seed uint64, opts ...SimOption) (float64, error) {
	if err := b.ensureKind(networks.KindRNN, "ForecastSample"); err != nil {
		return 0, err
	}
	seq, err := b.inner.SampleSequence(seed)
	if err != nil {
		return 0, err
	}
	return b.forecastSequence(seq, opts)
}

// forecastSequence runs the engine on a pooled scratch and extracts the
// prediction before the scratch is released.
func (b *Benchmark) forecastSequence(seq []*tensor.Tensor, opts []SimOption) (float64, error) {
	workers, mode, err := nativeSettings(opts)
	if err != nil {
		return 0, err
	}
	s := b.inner.AcquireScratchNumerics(workers, mode)
	defer b.inner.ReleaseScratch(s)
	res, err := b.inner.RunSequenceScratch(seq, s)
	if err != nil {
		return 0, err
	}
	return float64(res.Output.Data()[0]), nil
}

// SampleImage returns the deterministic synthetic input image for a CNN
// benchmark as a flat float32 slice, together with its shape.
func (b *Benchmark) SampleImage(seed uint64) ([]float32, []int, error) {
	if err := b.ensureKind(networks.KindCNN, "SampleImage"); err != nil {
		return nil, nil, err
	}
	in, err := b.inner.SampleInput(seed)
	if err != nil {
		return nil, nil, err
	}
	return in.Data(), in.Shape(), nil
}

// SampleHistory returns the deterministic synthetic price history for an RNN
// benchmark.
func (b *Benchmark) SampleHistory(seed uint64) ([]float64, error) {
	if err := b.ensureKind(networks.KindRNN, "SampleHistory"); err != nil {
		return nil, err
	}
	seq, err := b.inner.SampleSequence(seed)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(seq))
	for i, x := range seq {
		out[i] = float64(x.Data()[0])
	}
	return out, nil
}
