package tango_test

import (
	"math"
	"os"
	"testing"

	"tango"
)

// This file holds the env-aware comparison helpers used by tests that assert
// batched or served results against the single-sample path, plus the public
// API tests of the fast-numerics tiers.  On the default (reference) tier the
// engine contract is bitwise equality; when the CI fastmath job forces a fast
// tier via TANGO_NUMERICS, batched and single-sample runs tile differently
// and the contract relaxes to top-1 agreement within a relative-error bound.

// envProbTol returns the relative-error tolerance implied by TANGO_NUMERICS:
// 0 means the bitwise contract applies.
func envProbTol(t *testing.T) float64 {
	t.Helper()
	switch os.Getenv("TANGO_NUMERICS") {
	case "", "reference", "ref":
		return 0
	case "fast", "fastmath":
		return 1e-3
	case "int8":
		return 0.25
	default:
		t.Fatalf("unrecognized TANGO_NUMERICS=%q", os.Getenv("TANGO_NUMERICS"))
		return 0
	}
}

// maxRelErr returns max_i |got_i - want_i| / max_i |want_i|.
func maxRelErr(got, want []float32) float64 {
	var maxAbs, maxDiff float64
	for i := range want {
		if a := math.Abs(float64(want[i])); a > maxAbs {
			maxAbs = a
		}
		if d := math.Abs(float64(got[i]) - float64(want[i])); d > maxDiff {
			maxDiff = d
		}
	}
	if maxAbs == 0 {
		return maxDiff
	}
	return maxDiff / maxAbs
}

// sameProbs asserts got against want under the active numerics contract:
// bitwise on the reference tier, relative error within envProbTol otherwise.
func sameProbs(t *testing.T, label string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d probabilities, want %d", label, len(got), len(want))
	}
	if tol := envProbTol(t); tol > 0 {
		if re := maxRelErr(got, want); re > tol {
			t.Fatalf("%s: relative error %.3g exceeds %.3g", label, re, tol)
		}
		return
	}
	for j := range want {
		if math.Float32bits(got[j]) != math.Float32bits(want[j]) {
			t.Fatalf("%s: probability %d = %x, want %x (not bit-identical)",
				label, j, math.Float32bits(got[j]), math.Float32bits(want[j]))
		}
	}
}

// sameForecast asserts a scalar forecast under the active numerics contract.
func sameForecast(t *testing.T, label string, got, want float64) {
	t.Helper()
	if tol := envProbTol(t); tol > 0 {
		denom := math.Abs(want)
		if denom == 0 {
			denom = 1
		}
		if math.Abs(got-want)/denom > tol {
			t.Fatalf("%s: forecast %v, want %v within rel %.3g", label, got, want, tol)
		}
		return
	}
	if got != want {
		t.Fatalf("%s: forecast %v, want %v (not bit-identical)", label, got, want)
	}
}

// TestWithFastMathPublicAPI checks the opt-in fast tier through the public
// surface: same top-1 class as the reference run, output within tolerance,
// and the default path untouched by the option's presence elsewhere.
func TestWithFastMathPublicAPI(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := b.SampleImage(41)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := b.Classify(img, tango.WithReferenceNumerics())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  tango.SimOption
		tol  float64
	}{
		{"fast", tango.WithFastMath(), 1e-3},
		{"int8", tango.WithInt8(), 0.25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := b.Classify(img, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			if got.Class != ref.Class {
				t.Fatalf("top-1 %d, want %d", got.Class, ref.Class)
			}
			if re := maxRelErr(got.Probabilities, ref.Probabilities); re > tc.tol {
				t.Fatalf("relative error %.3g exceeds %.3g", re, tc.tol)
			}
			// The tier must actually engage: fast outputs differ from the
			// bit-exact reference in at least one bit on real networks.
			same := true
			for j := range got.Probabilities {
				if math.Float32bits(got.Probabilities[j]) != math.Float32bits(ref.Probabilities[j]) {
					same = false
					break
				}
			}
			if same {
				t.Fatal("fast-tier output is bit-identical to reference; tier did not engage")
			}
		})
	}
	// A subsequent default run must stay bit-identical to the reference:
	// fast-tier runs share the pooled scratch but must not leak their mode.
	again, err := b.Classify(img, tango.WithReferenceNumerics())
	if err != nil {
		t.Fatal(err)
	}
	sameLabel := "post-fast reference run"
	for j := range again.Probabilities {
		if math.Float32bits(again.Probabilities[j]) != math.Float32bits(ref.Probabilities[j]) {
			t.Fatalf("%s: probability %d changed", sameLabel, j)
		}
	}
}

// TestWithFastMathForecast checks the fast tier on the recurrent public API.
func TestWithFastMathForecast(t *testing.T) {
	for _, name := range []string{"LSTM", "GRU"} {
		b, err := tango.LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := b.SampleHistory(13)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := b.Forecast(hist, tango.WithReferenceNumerics())
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Forecast(hist, tango.WithFastMath())
		if err != nil {
			t.Fatal(err)
		}
		denom := math.Abs(ref)
		if denom == 0 {
			denom = 1
		}
		if math.Abs(got-ref)/denom > 1e-3 {
			t.Fatalf("%s: fast forecast %v, reference %v", name, got, ref)
		}
	}
}

// TestFastMathBatchPublicAPI checks ClassifyBatch and ForecastBatch under
// the fast tiers: per-sample top-1 agreement with reference batched runs.
func TestFastMathBatchPublicAPI(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	images := make([][]float32, n)
	for i := range images {
		img, _, err := b.SampleImage(uint64(60 + i))
		if err != nil {
			t.Fatal(err)
		}
		images[i] = img
	}
	ref, err := b.ClassifyBatch(images, tango.WithReferenceNumerics())
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  tango.SimOption
		tol  float64
	}{
		{"fast", tango.WithFastMath(), 1e-3},
		{"int8", tango.WithInt8(), 0.25},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := b.ClassifyBatch(images, tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Class != ref[i].Class {
					t.Fatalf("sample %d: top-1 %d, want %d", i, got[i].Class, ref[i].Class)
				}
				if re := maxRelErr(got[i].Probabilities, ref[i].Probabilities); re > tc.tol {
					t.Fatalf("sample %d: relative error %.3g exceeds %.3g", i, re, tc.tol)
				}
			}
		})
	}
}

// TestNumericsEnvDefault checks that TANGO_NUMERICS selects the default tier
// and that an explicit WithReferenceNumerics overrides it.
func TestNumericsEnvDefault(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := b.SampleImage(19)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := b.Classify(img, tango.WithReferenceNumerics())
	if err != nil {
		t.Fatal(err)
	}
	fast, err := b.Classify(img, tango.WithFastMath())
	if err != nil {
		t.Fatal(err)
	}

	t.Setenv("TANGO_NUMERICS", "fast")
	viaEnv, err := b.Classify(img)
	if err != nil {
		t.Fatal(err)
	}
	for j := range viaEnv.Probabilities {
		if math.Float32bits(viaEnv.Probabilities[j]) != math.Float32bits(fast.Probabilities[j]) {
			t.Fatal("TANGO_NUMERICS=fast run is not bit-identical to WithFastMath run")
		}
	}
	pinned, err := b.Classify(img, tango.WithReferenceNumerics())
	if err != nil {
		t.Fatal(err)
	}
	for j := range pinned.Probabilities {
		if math.Float32bits(pinned.Probabilities[j]) != math.Float32bits(ref.Probabilities[j]) {
			t.Fatal("WithReferenceNumerics did not override TANGO_NUMERICS")
		}
	}

	t.Setenv("TANGO_NUMERICS", "bogus")
	if _, err := b.Classify(img); err == nil {
		t.Fatal("expected an error for TANGO_NUMERICS=bogus")
	}
}
