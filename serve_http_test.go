package tango_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tango"
)

// newHTTPServer mounts a tango.Server's Handler on an httptest server.
func newHTTPServer(t *testing.T) (*tango.Server, *httptest.Server) {
	t.Helper()
	srv, err := tango.NewServer([]string{"CifarNet", "LSTM"}, tango.ServerConfig{
		MaxBatch:   8,
		MaxDelay:   2 * time.Millisecond,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON posts a raw body and returns status + response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestHTTPClassify drives concurrent seed-based requests over real HTTP and
// bit-compares the responses against local per-sample Classify.
func TestHTTPClassify(t *testing.T) {
	srv, ts := newHTTPServer(t)
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := uint64(i + 1)
			status, data := postJSONQuiet(ts.URL+"/v1/classify",
				fmt.Sprintf(`{"benchmark":"CifarNet","seed":%d}`, seed))
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", status, data)
				return
			}
			var got struct {
				Class         int       `json:"class"`
				Probabilities []float32 `json:"probabilities"`
			}
			if err := json.Unmarshal(data, &got); err != nil {
				errs[i] = err
				return
			}
			img, _, err := b.SampleImage(seed)
			if err != nil {
				errs[i] = err
				return
			}
			want, err := b.Classify(img)
			if err != nil {
				errs[i] = err
				return
			}
			if got.Class != want.Class {
				errs[i] = fmt.Errorf("class %d, want %d", got.Class, want.Class)
				return
			}
			if tol := envProbTol(t); tol > 0 {
				if re := maxRelErr(got.Probabilities, want.Probabilities); re > tol {
					errs[i] = fmt.Errorf("relative error %.3g exceeds %.3g", re, tol)
				}
				return
			}
			for j := range got.Probabilities {
				if math.Float32bits(got.Probabilities[j]) != math.Float32bits(want.Probabilities[j]) {
					errs[i] = fmt.Errorf("prob %d: served %v, local %v", j, got.Probabilities[j], want.Probabilities[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	if st := srv.Stats(); st.Benchmarks["CifarNet"].Completed != n {
		t.Fatalf("completed %d, want %d", st.Benchmarks["CifarNet"].Completed, n)
	}
}

// postJSONQuiet is postJSON without the testing.T plumbing, for goroutines.
func postJSONQuiet(url, body string) (int, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestHTTPForecast round-trips an explicit history.
func TestHTTPForecast(t *testing.T) {
	_, ts := newHTTPServer(t)
	b, err := tango.LoadBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	history := []float64{0.41, 0.43, 0.42}
	want, err := b.Forecast(history)
	if err != nil {
		t.Fatal(err)
	}

	status, data := postJSON(t, ts.URL+"/v1/forecast", `{"benchmark":"LSTM","history":[0.41,0.43,0.42]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var got struct {
		Prediction float64 `json:"prediction"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	sameForecast(t, "HTTP forecast", got.Prediction, want)
}

// TestHTTPBadRequests covers the 4xx mapping: empty body and wrong-shape
// inputs are 400 (wrapped ErrShape server-side), unknown benchmarks 404,
// unknown routes 404/405.
func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t)

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		substr string
	}{
		{"empty body", "/v1/classify", "", http.StatusBadRequest, "empty request body"},
		{"bad json", "/v1/classify", "{", http.StatusBadRequest, "invalid request JSON"},
		{"wrong shape", "/v1/classify", `{"benchmark":"CifarNet","image":[1,2,3]}`, http.StatusBadRequest, "want 3072"},
		{"missing image", "/v1/classify", `{"benchmark":"CifarNet"}`, http.StatusBadRequest, ""},
		{"empty history", "/v1/forecast", `{"benchmark":"LSTM","history":[]}`, http.StatusBadRequest, "empty history"},
		{"kind mismatch", "/v1/forecast", `{"benchmark":"CifarNet","history":[0.5]}`, http.StatusBadRequest, "use Classify"},
		{"seed kind mismatch classify", "/v1/classify", `{"benchmark":"LSTM","seed":1}`, http.StatusBadRequest, "/v1/forecast"},
		{"seed kind mismatch forecast", "/v1/forecast", `{"benchmark":"CifarNet","seed":1}`, http.StatusBadRequest, "/v1/classify"},
		{"not served", "/v1/classify", `{"benchmark":"AlexNet","seed":1}`, http.StatusNotFound, "not served"},
		{"empty forecast body", "/v1/forecast", "", http.StatusBadRequest, "empty request body"},
	}
	for _, tc := range cases {
		status, data := postJSON(t, ts.URL+tc.path, tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, data)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not {\"error\":...}", tc.name, data)
			continue
		}
		if tc.substr != "" && !strings.Contains(e.Error, tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.substr)
		}
	}

	// Shape rejections must wrap the suite's ErrShape sentinel: the message
	// carries the sentinel text end to end.
	status, data := postJSON(t, ts.URL+"/v1/classify", `{"benchmark":"CifarNet","image":[1,2,3]}`)
	if status != http.StatusBadRequest || !bytes.Contains(data, []byte(tango.ErrShape.Error())) {
		t.Fatalf("shape rejection = %d %q; want 400 mentioning %q", status, data, tango.ErrShape.Error())
	}
}

// TestHTTPHealthAndMetrics checks the operational endpoints.
func TestHTTPHealthAndMetrics(t *testing.T) {
	_, ts := newHTTPServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status     string   `json:"status"`
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != string(tango.HealthHealthy) || len(health.Benchmarks) != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	if _, data := postJSON(t, ts.URL+"/v1/forecast", `{"benchmark":"LSTM","seed":7}`); len(data) == 0 {
		t.Fatal("forecast returned empty body")
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var stats tango.ServerStats
	if err := json.NewDecoder(mresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests == 0 || stats.Batches == 0 {
		t.Fatalf("metrics show no traffic: %+v", stats)
	}
	if _, ok := stats.Benchmarks["LSTM"]; !ok {
		t.Fatalf("metrics missing LSTM: %+v", stats)
	}
}
