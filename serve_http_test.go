package tango_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tango"
)

// newHTTPServer mounts a tango.Server's Handler on an httptest server.
func newHTTPServer(t *testing.T) (*tango.Server, *httptest.Server) {
	t.Helper()
	srv, err := tango.NewServer([]string{"CifarNet", "LSTM"}, tango.ServerConfig{
		MaxBatch:   8,
		MaxDelay:   2 * time.Millisecond,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON posts a raw body and returns status + response bytes.
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestHTTPClassify drives concurrent seed-based requests over real HTTP and
// bit-compares the responses against local per-sample Classify.
func TestHTTPClassify(t *testing.T) {
	srv, ts := newHTTPServer(t)
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seed := uint64(i + 1)
			status, data := postJSONQuiet(ts.URL+"/v1/classify",
				fmt.Sprintf(`{"benchmark":"CifarNet","seed":%d}`, seed))
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", status, data)
				return
			}
			var got struct {
				Class         int       `json:"class"`
				Probabilities []float32 `json:"probabilities"`
			}
			if err := json.Unmarshal(data, &got); err != nil {
				errs[i] = err
				return
			}
			img, _, err := b.SampleImage(seed)
			if err != nil {
				errs[i] = err
				return
			}
			want, err := b.Classify(img)
			if err != nil {
				errs[i] = err
				return
			}
			if got.Class != want.Class {
				errs[i] = fmt.Errorf("class %d, want %d", got.Class, want.Class)
				return
			}
			if tol := envProbTol(t); tol > 0 {
				if re := maxRelErr(got.Probabilities, want.Probabilities); re > tol {
					errs[i] = fmt.Errorf("relative error %.3g exceeds %.3g", re, tol)
				}
				return
			}
			for j := range got.Probabilities {
				if math.Float32bits(got.Probabilities[j]) != math.Float32bits(want.Probabilities[j]) {
					errs[i] = fmt.Errorf("prob %d: served %v, local %v", j, got.Probabilities[j], want.Probabilities[j])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}

	if st := srv.Stats(); st.Benchmarks["CifarNet"].Completed != n {
		t.Fatalf("completed %d, want %d", st.Benchmarks["CifarNet"].Completed, n)
	}
}

// postJSONQuiet is postJSON without the testing.T plumbing, for goroutines.
func postJSONQuiet(url, body string) (int, []byte) {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, []byte(err.Error())
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// TestHTTPForecast round-trips an explicit history.
func TestHTTPForecast(t *testing.T) {
	_, ts := newHTTPServer(t)
	b, err := tango.LoadBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}
	history := []float64{0.41, 0.43, 0.42}
	want, err := b.Forecast(history)
	if err != nil {
		t.Fatal(err)
	}

	status, data := postJSON(t, ts.URL+"/v1/forecast", `{"benchmark":"LSTM","history":[0.41,0.43,0.42]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	var got struct {
		Prediction float64 `json:"prediction"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	sameForecast(t, "HTTP forecast", got.Prediction, want)
}

// TestHTTPBadRequests covers the 4xx mapping: empty body and wrong-shape
// inputs are 400 (wrapped ErrShape server-side), unknown benchmarks 404,
// unknown routes 404/405.
func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t)

	cases := []struct {
		name   string
		path   string
		body   string
		status int
		substr string
	}{
		{"empty body", "/v1/classify", "", http.StatusBadRequest, "empty request body"},
		{"bad json", "/v1/classify", "{", http.StatusBadRequest, "invalid request JSON"},
		{"wrong shape", "/v1/classify", `{"benchmark":"CifarNet","image":[1,2,3]}`, http.StatusBadRequest, "want 3072"},
		{"missing image", "/v1/classify", `{"benchmark":"CifarNet"}`, http.StatusBadRequest, ""},
		{"empty history", "/v1/forecast", `{"benchmark":"LSTM","history":[]}`, http.StatusBadRequest, "empty history"},
		{"kind mismatch", "/v1/forecast", `{"benchmark":"CifarNet","history":[0.5]}`, http.StatusBadRequest, "use Classify"},
		{"seed kind mismatch classify", "/v1/classify", `{"benchmark":"LSTM","seed":1}`, http.StatusBadRequest, "/v1/forecast"},
		{"seed kind mismatch forecast", "/v1/forecast", `{"benchmark":"CifarNet","seed":1}`, http.StatusBadRequest, "/v1/classify"},
		{"not served", "/v1/classify", `{"benchmark":"AlexNet","seed":1}`, http.StatusNotFound, "not served"},
		{"empty forecast body", "/v1/forecast", "", http.StatusBadRequest, "empty request body"},
	}
	for _, tc := range cases {
		status, data := postJSON(t, ts.URL+tc.path, tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, data)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not {\"error\":...}", tc.name, data)
			continue
		}
		if tc.substr != "" && !strings.Contains(e.Error, tc.substr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.substr)
		}
	}

	// Shape rejections must wrap the suite's ErrShape sentinel: the message
	// carries the sentinel text end to end.
	status, data := postJSON(t, ts.URL+"/v1/classify", `{"benchmark":"CifarNet","image":[1,2,3]}`)
	if status != http.StatusBadRequest || !bytes.Contains(data, []byte(tango.ErrShape.Error())) {
		t.Fatalf("shape rejection = %d %q; want 400 mentioning %q", status, data, tango.ErrShape.Error())
	}
}

// TestHTTPHealthAndStats checks the operational JSON endpoints: /healthz and
// the v1 stats blob at /v1/stats, plus the one-release JSON shim on /metrics
// for pre-v1 collectors that send Accept: application/json.
func TestHTTPHealthAndStats(t *testing.T) {
	_, ts := newHTTPServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var health struct {
		Status     string   `json:"status"`
		Benchmarks []string `json:"benchmarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != string(tango.HealthHealthy) || len(health.Benchmarks) != 2 {
		t.Fatalf("healthz = %+v", health)
	}

	if _, data := postJSON(t, ts.URL+"/v1/forecast", `{"benchmark":"LSTM","seed":7}`); len(data) == 0 {
		t.Fatal("forecast returned empty body")
	}
	for _, ep := range []struct {
		name, path, accept string
	}{
		{"v1 stats", "/v1/stats", ""},
		{"metrics JSON shim", "/metrics", "application/json"},
	} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+ep.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ep.accept != "" {
			req.Header.Set("Accept", ep.accept)
		}
		mresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var stats tango.ServerStats
		err = json.NewDecoder(mresp.Body).Decode(&stats)
		mresp.Body.Close()
		if err != nil {
			t.Fatalf("%s: %v", ep.name, err)
		}
		if stats.Requests == 0 || stats.Batches == 0 {
			t.Fatalf("%s shows no traffic: %+v", ep.name, stats)
		}
		if _, ok := stats.Benchmarks["LSTM"]; !ok {
			t.Fatalf("%s missing LSTM: %+v", ep.name, stats)
		}
		lstm := stats.Benchmarks["LSTM"]
		if !lstm.Resident || lstm.ResidentBytes <= 0 || lstm.WeightBytes <= 0 {
			t.Fatalf("%s: LSTM memory accounting empty: %+v", ep.name, lstm)
		}
		var histTotal uint64
		for _, c := range lstm.LatencyHist {
			histTotal += c
		}
		if histTotal != lstm.Completed {
			t.Fatalf("%s: latency histogram holds %d samples, want %d", ep.name, histTotal, lstm.Completed)
		}
	}
}

// promFamilies parses Prometheus text exposition the way a scraper does:
// HELP/TYPE headers declare families, sample lines carry name{labels} value.
// It fails the test on any malformed line, undeclared sample, or
// non-cumulative histogram, and returns sample values keyed by
// "name{labels}".
func promFamilies(t *testing.T, text string) (types map[string]string, samples map[string]float64) {
	t.Helper()
	types = make(map[string]string)
	samples = make(map[string]float64)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|[+]Inf|NaN)$`)
	helpRe := regexp.MustCompile(`^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) (.+)$`)
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			mm := helpRe.FindStringSubmatch(line)
			if mm == nil {
				t.Fatalf("malformed comment line: %q", line)
			}
			if mm[1] == "TYPE" {
				switch mm[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("unknown TYPE %q in %q", mm[3], line)
				}
				types[mm[2]] = mm[3]
			}
			continue
		}
		mm := sampleRe.FindStringSubmatch(line)
		if mm == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(mm[1], "_bucket"), "_sum"), "_count")
		if _, ok := types[mm[1]]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no TYPE declaration", mm[1])
			}
		}
		v, err := strconv.ParseFloat(mm[3], 64)
		if err != nil {
			t.Fatalf("sample %q: bad value %q", line, mm[3])
		}
		if v < 0 && types[base] == "counter" {
			t.Fatalf("negative counter: %q", line)
		}
		samples[mm[1]+mm[2]] = v
	}
	return types, samples
}

// TestHTTPPrometheusMetrics drives traffic, scrapes GET /metrics, and
// verifies the exposition parses scrape-shaped: declared families, valid
// sample lines, nonzero request counters and a consistent latency histogram.
func TestHTTPPrometheusMetrics(t *testing.T) {
	_, ts := newHTTPServer(t)
	for i := 0; i < 4; i++ {
		if status, data := postJSON(t, ts.URL+"/v1/forecast", `{"benchmark":"LSTM","seed":3}`); status != http.StatusOK {
			t.Fatalf("forecast: %d %s", status, data)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q, want text/plain exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := promFamilies(t, string(body))

	if types["tango_requests_total"] != "counter" {
		t.Fatalf("tango_requests_total type = %q", types["tango_requests_total"])
	}
	if types["tango_request_latency_seconds"] != "histogram" {
		t.Fatalf("latency type = %q", types["tango_request_latency_seconds"])
	}
	if v := samples[`tango_requests_total{benchmark="LSTM"}`]; v < 4 {
		t.Fatalf("LSTM requests_total = %v, want >= 4", v)
	}
	if v := samples[`tango_model_resident_bytes{benchmark="LSTM"}`]; v <= 0 {
		t.Fatalf("LSTM resident bytes = %v, want > 0", v)
	}
	if v := samples["go_goroutines"]; v <= 0 {
		t.Fatalf("go_goroutines = %v", v)
	}

	// Histogram invariants: buckets cumulative, +Inf equals _count.
	var prev float64
	for _, q := range []string{"0.00025", "0.0005", "0.001", "0.0025", "0.005", "0.01", "0.025", "0.05", "0.1", "0.25", "0.5", "1", "2.5", "5", "+Inf"} {
		key := `tango_request_latency_seconds_bucket{benchmark="LSTM",le="` + q + `"}`
		v, ok := samples[key]
		if !ok {
			t.Fatalf("missing bucket %s", key)
		}
		if v < prev {
			t.Fatalf("bucket le=%s count %v below previous %v (not cumulative)", q, v, prev)
		}
		prev = v
	}
	if c := samples[`tango_request_latency_seconds_count{benchmark="LSTM"}`]; c != prev {
		t.Fatalf("_count %v != +Inf bucket %v", c, prev)
	}
	if c := samples[`tango_request_latency_seconds_count{benchmark="LSTM"}`]; c < 4 {
		t.Fatalf("latency count %v, want >= 4", c)
	}
}

// TestPrometheusGolden pins the exposition bytes for a handcrafted snapshot:
// stable family order, sorted benchmark rows, HELP/TYPE headers and label
// escaping must not drift, because scrape configs and recording rules depend
// on exact series names.
func TestPrometheusGolden(t *testing.T) {
	hist := make([]uint64, 15)
	hist[3] = 90 // 90 requests <= 2.5ms
	hist[7] = 9  // 9 requests <= 50ms
	hist[14] = 1 // one in +Inf
	st := tango.ServerStats{
		Requests:         100,
		Completed:        100,
		Shed:             3,
		InFlight:         1,
		Batches:          25,
		MeanBatchSize:    4,
		NumericsTier:     "fast",
		TargetP99Micros:  50_000,
		ModelBudgetBytes: 1 << 30,
		ResidentModels:   1,
		ResidentBytes:    123456,
		Benchmarks: map[string]tango.BenchmarkServeStats{
			`weird"name\with`: {
				Benchmark: `weird"name\with`, Kind: "RNN",
				BreakerState: "open",
			},
			"CifarNet": {
				Benchmark: "CifarNet", Kind: "CNN",
				Submitted: 100, Completed: 100, Canceled: 2,
				RejectedQueueFull: 5, RejectedClosed: 1,
				Batches: 25, BatchErrors: 1, Bisections: 2, Isolated: 1,
				ShedLoad: 2, ShedBreaker: 1,
				InFlight: 1, QueueLen: 3, QueueCap: 64,
				BreakerState: "closed", MeanBatchSize: 4,
				BatchSizeHist:    []uint64{5, 10, 0, 10},
				LatencyP50Micros: 1800, LatencyP99Micros: 42000,
				LatencyHist:       hist,
				LatencySumMicros:  750_000,
				BatchWindowMicros: 1500,
				Resident:          true,
				ResidentBytes:     123456, WeightBytes: 100000,
				PackedBytes: 20000, ScratchBytes: 3456,
				Loads: 2, Evictions: 1,
			},
		},
	}
	got := st.PrometheusText()

	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition drifted from %s (regenerate with UPDATE_GOLDEN=1 if intended)\n--- got ---\n%s", golden, got)
	}

	// The golden text itself must parse scrape-shaped, with the escaped
	// label round-tripping.
	types, samples := promFamilies(t, got)
	if len(types) == 0 {
		t.Fatal("no families parsed from golden")
	}
	if v := samples[`tango_requests_total{benchmark="weird\"name\\with"}`]; v != 0 {
		t.Fatalf("escaped-label sample = %v, want 0", v)
	}
	if v := samples[`tango_breaker_state{benchmark="weird\"name\\with"}`]; v != 2 {
		t.Fatalf("escaped-label breaker state = %v, want 2 (open)", v)
	}
	if v := samples[`tango_batch_size_sum{benchmark="CifarNet"}`]; v != 65 {
		t.Fatalf("batch size sum = %v, want 65", v)
	}
}
