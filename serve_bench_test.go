package tango_test

import (
	"context"
	"testing"
	"time"

	"tango"
)

// BenchmarkServeThroughput measures the dynamic-batching server under
// closed-loop in-process clients: each RunParallel worker submits its next
// request as soon as the previous one returns, so concurrent requests
// coalesce into batched engine runs.  Compare ns/op against
// BenchmarkInferenceCifarNet (one sequential Classify per op) to see what
// the batching layer buys under load; both are tracked by the CI
// bench-regression job.
func BenchmarkServeThroughput(b *testing.B) {
	srv, err := tango.NewServer([]string{"CifarNet"}, tango.ServerConfig{
		MaxBatch:   16,
		MaxDelay:   200 * time.Microsecond,
		QueueDepth: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()

	bench, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		b.Fatal(err)
	}
	img, _, err := bench.SampleImage(1)
	if err != nil {
		b.Fatal(err)
	}

	// 8 concurrent clients per proc: enough in-flight requests for batches
	// to form even on a single-CPU runner.
	b.SetParallelism(8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		ctx := context.Background()
		for pb.Next() {
			if _, err := srv.Classify(ctx, "CifarNet", img); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := srv.Stats()
	if st.Batches > 0 {
		b.ReportMetric(st.MeanBatchSize, "batchsize/mean")
	}
}
