// Serve: embed the dynamic-batching tango.Server in-process, the way an
// application would, and show what the batching layer does under concurrent
// load: closed-loop clients hammer Classify, the scheduler coalesces their
// requests into batched engine runs, and the stats snapshot shows the formed
// batch sizes and end-to-end latency percentiles.  (For the network-facing
// version of the same thing, see cmd/tango-serve.)
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"tango"
)

func main() {
	name := flag.String("benchmark", "CifarNet", "CNN benchmark to serve")
	requests := flag.Int("requests", 64, "total requests to serve")
	clients := flag.Int("clients", 8, "concurrent closed-loop clients")
	maxBatch := flag.Int("max-batch", 16, "max requests per formed batch")
	maxDelayUS := flag.Int("max-delay-us", 500, "max wait for a batch to fill, microseconds")
	flag.Parse()

	b, err := tango.LoadBenchmark(*name)
	if err != nil {
		log.Fatal(err)
	}
	if b.Kind() != "CNN" {
		log.Fatalf("this example serves CNN benchmarks; %s is a %s", *name, b.Kind())
	}

	// Sequential baseline: what the same request stream costs without the
	// serving layer, one Classify per request.
	img, _, err := b.SampleImage(1)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := b.Classify(img); err != nil { // warm the plan
		log.Fatal(err)
	}
	seqStart := time.Now()
	for i := 0; i < *requests; i++ {
		if _, err := b.Classify(img); err != nil {
			log.Fatal(err)
		}
	}
	seqRate := float64(*requests) / time.Since(seqStart).Seconds()

	srv, err := tango.NewServer([]string{*name}, tango.ServerConfig{
		MaxBatch:   *maxBatch,
		MaxDelay:   time.Duration(*maxDelayUS) * time.Microsecond,
		QueueDepth: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Closed-loop clients: each submits its next request the moment the
	// previous one completes, like a saturated frontend.  Errors are
	// collected, not fatal'd from the goroutines, so the deferred Close
	// still drains on failure.
	work := make(chan int)
	clientErrs := make(chan error, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var failed error
			for range work {
				if failed != nil {
					continue // keep draining so the producer never blocks
				}
				if _, err := srv.Classify(context.Background(), *name, img); err != nil {
					failed = err
				}
			}
			if failed != nil {
				clientErrs <- failed
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	close(clientErrs)
	if err := <-clientErrs; err != nil {
		log.Fatal(err)
	}
	servedRate := float64(*requests) / time.Since(start).Seconds()

	st := srv.Stats().Benchmarks[*name]
	fmt.Printf("served %d requests from %d concurrent clients on %s:\n\n", *requests, *clients, *name)
	fmt.Printf("  %-28s %10.1f req/s\n", "sequential Classify", seqRate)
	fmt.Printf("  %-28s %10.1f req/s (%.2fx)\n\n", "batching server", servedRate, servedRate/seqRate)
	fmt.Printf("  batches formed        %d (mean size %.2f)\n", st.Batches, st.MeanBatchSize)
	fmt.Printf("  batch size histogram  %v\n", st.BatchSizeHist)
	fmt.Printf("  latency p50 / p99     %.0fus / %.0fus\n", st.LatencyP50Micros, st.LatencyP99Micros)
	fmt.Printf("  rejected (queue full) %d\n", st.RejectedQueueFull)
}
