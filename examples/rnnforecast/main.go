// Rnnforecast exercises the two recurrent benchmarks the way the paper's
// pre-trained models are used (Table I): predict the next value of a price
// series from the previous observations, with both the GRU and the LSTM, and
// compare their architectural cost on the simulator.
package main

import (
	"fmt"
	"log"

	"tango"
)

func main() {
	suite := tango.NewSuite()

	// A short normalized "bitcoin closing price" history.
	history := []float64{0.42, 0.45}

	for _, name := range tango.RNNBenchmarks() {
		b, err := suite.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		pred, err := b.Forecast(history)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s forecast: history %v -> next %.4f\n", name, history, pred)

		sim, err := b.Simulate(tango.WithFastSampling())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("      simulated cost: %d cycles, %d instructions, peak %.1f W\n",
			sim.Cycles, sim.Instructions, sim.PeakWatts)
	}

	fmt.Println("\nthe GRU runs three gates per step against the LSTM's four, so it executes fewer instructions")
}
