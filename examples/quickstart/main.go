// Quickstart: load one CNN benchmark from the suite, run a native inference
// on the synthetic sample image, then run the same workload on the GPU
// architecture simulator and print its characterization summary.
package main

import (
	"fmt"
	"log"

	"tango"
)

func main() {
	suite := tango.NewSuite()

	// 1. Load CifarNet (3 conv + 2 fc layers, 9 traffic-signal classes).
	b, err := suite.Benchmark("CifarNet")
	if err != nil {
		log.Fatal(err)
	}
	desc, err := b.Describe()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s with %d layers and %d parameters (input %v)\n",
		desc.Name, desc.Kind, desc.Layers, desc.Parameters, desc.InputShape)

	// 2. Native inference on the synthetic stand-in for the speed-limit sign.
	cls, err := b.ClassifySample(2024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted class %d with probability %.4f\n", cls.Class, cls.Probabilities[cls.Class])

	// 3. Simulate the same workload on the Pascal GP102 configuration the
	// paper uses with GPGPU-Sim.
	sim, err := b.Simulate(tango.WithFastSampling())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: %d cycles (%.3f ms) on %s, peak power %.1f W\n",
		sim.Cycles, sim.Seconds*1e3, sim.Device, sim.PeakWatts)
	fmt.Println("cycles by layer type:")
	for class, cycles := range sim.CyclesByLayerClass {
		fmt.Printf("  %-10s %10d\n", class, cycles)
	}
}
