// Cachesweep reproduces the Figure 2 experiment interactively: it sweeps the
// simulated L1 data cache from bypassed to four times the default size for a
// chosen set of benchmarks and prints the normalized execution time, showing
// that CNNs benefit from on-chip cache while RNNs do not (Observation 2).
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"tango"
)

func main() {
	networksFlag := flag.String("networks", "GRU,CifarNet,AlexNet", "comma-separated benchmarks to sweep")
	flag.Parse()

	suite := tango.NewSuite()
	sizesKB := []int{0, 64, 128, 256}

	fmt.Printf("%-12s", "Network")
	for _, kb := range sizesKB {
		label := fmt.Sprintf("%dKB", kb)
		if kb == 0 {
			label = "No L1"
		}
		fmt.Printf("  %10s", label)
	}
	fmt.Println()

	for _, name := range strings.Split(*networksFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		b, err := suite.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		var base float64
		fmt.Printf("%-12s", name)
		for _, kb := range sizesKB {
			res, err := b.Simulate(tango.WithL1SizeKB(kb), tango.WithFastSampling())
			if err != nil {
				log.Fatal(err)
			}
			cycles := float64(res.Cycles)
			if kb == 0 {
				base = cycles
			}
			fmt.Printf("  %10.3f", cycles/base)
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are execution time normalized to the bypassed-L1 run (lower is better)")
}
