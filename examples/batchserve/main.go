// Batchserve: drive a sustained stream of classification requests through
// the batched inference engine, the way a serving frontend would — requests
// arrive continuously, the server drains the queue in batches, and
// throughput is what matters.  The example sweeps batch sizes on one
// benchmark and prints an images/sec table against the sequential
// single-sample baseline, then serves a short request stream end to end.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"tango"
)

func main() {
	name := flag.String("benchmark", "CifarNet", "CNN benchmark to serve")
	requests := flag.Int("requests", 256, "requests in the simulated stream")
	batches := flag.String("batches", "1,4,16,64", "comma-separated batch sizes to sweep")
	parallel := flag.Int("parallel", 1, "engine worker goroutines (0 = one per CPU)")
	flag.Parse()

	b, err := tango.LoadBenchmark(*name)
	if err != nil {
		log.Fatal(err)
	}
	if b.Kind() != "CNN" {
		log.Fatalf("batchserve drives CNN benchmarks; %s is a %s", *name, b.Kind())
	}
	var opts []tango.SimOption
	if *parallel != 1 {
		opts = append(opts, tango.WithParallelism(*parallel))
	}

	// Pre-generate the request stream: deterministic synthetic images
	// standing in for decoded client payloads.
	images := make([][]float32, *requests)
	for i := range images {
		img, _, err := b.SampleImage(uint64(i + 1))
		if err != nil {
			log.Fatal(err)
		}
		images[i] = img
	}
	// Warm the engine (plan resolution, scratch growth) outside the timings.
	if _, err := b.ClassifyBatch(images[:1], opts...); err != nil {
		log.Fatal(err)
	}

	// Sequential single-sample baseline: one Classify call per request, the
	// way a naive frontend would serve the stream.
	seqStart := time.Now()
	for _, img := range images {
		if _, err := b.Classify(img, opts...); err != nil {
			log.Fatal(err)
		}
	}
	baseline := float64(len(images)) / time.Since(seqStart).Seconds()

	fmt.Printf("serving %d requests to %s, sweeping batch size:\n\n", *requests, *name)
	fmt.Printf("  %10s  %12s  %10s\n", "batch", "images/sec", "speedup")
	fmt.Printf("  %10s  %12.2f  %9.2fx\n", "sequential", baseline, 1.0)
	for _, bs := range parseBatches(*batches) {
		elapsed, classified := serveStream(b, images, bs, opts)
		ips := float64(classified) / elapsed.Seconds()
		fmt.Printf("  %10d  %12.2f  %9.2fx\n", bs, ips, ips/baseline)
	}

	// Serve one final batch and show a few responses, as a frontend would
	// return them.
	res, err := b.ClassifyBatch(images[:min(4, len(images))], opts...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsample responses:")
	for i, r := range res {
		fmt.Printf("  request %d -> class %d (p=%.4f)\n", i, r.Class, r.Probabilities[r.Class])
	}
}

// serveStream drains the request queue in batches of size bs and returns the
// wall-clock time and number of images classified.
func serveStream(b *tango.Benchmark, images [][]float32, bs int, opts []tango.SimOption) (time.Duration, int) {
	start := time.Now()
	classified := 0
	for off := 0; off < len(images); off += bs {
		end := off + bs
		if end > len(images) {
			end = len(images)
		}
		if _, err := b.ClassifyBatch(images[off:end], opts...); err != nil {
			log.Fatal(err)
		}
		classified += end - off
	}
	return time.Since(start), classified
}

// parseBatches parses the comma-separated batch-size list.
func parseBatches(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			log.Fatalf("bad batch size %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		log.Fatal("no batch sizes given")
	}
	return out
}
