// Edgecompare reproduces the Figure 6 comparison: the same benchmark deployed
// on an embedded GPU (Jetson TX1) and on an embedded FPGA (PynQ-Z1).  The TX1
// draws more peak power but finishes faster; its total energy per inference
// is still higher than the FPGA's.
package main

import (
	"fmt"
	"log"

	"tango"
)

func main() {
	for _, name := range []string{"CifarNet", "SqueezeNet"} {
		table, err := tango.RunExperiment("fig6",
			tango.WithNetworks(name),
			tango.WithFastExperimentSampling(),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(table.String())
		fmt.Println()
	}
	fmt.Println("energy is computed as peak power x execution time, matching the paper's Wattsup methodology")
}
