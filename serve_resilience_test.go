package tango_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tango"
	"tango/internal/resilience"
)

// TestServerBreakerDegradedAndDraining walks one server through the full
// tri-state health lifecycle: healthy, then degraded once injected engine
// failures trip the circuit breaker (requests fail fast with ErrDegraded,
// /healthz still answers 200 — degraded is not dead), then draining after
// Close (/healthz answers 503).
func TestServerBreakerDegradedAndDraining(t *testing.T) {
	srv, err := tango.NewServer([]string{"LSTM"}, tango.ServerConfig{
		MaxBatch:         4,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // never half-open within the test
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx := context.Background()
	history := []float64{0.5, 0.6, 0.7}
	if _, err := srv.Forecast(ctx, "LSTM", history); err != nil {
		t.Fatal(err)
	}
	if rep := srv.Health(); rep.Status != tango.HealthHealthy {
		t.Fatalf("health before faults = %+v, want healthy", rep)
	}

	// Fail every batch run (including bisection singletons): each request
	// resolves as an engine failure and counts against the breaker.
	if err := resilience.Enable("serve.batch.run=error:1", 1); err != nil {
		t.Fatal(err)
	}
	defer resilience.Disable()
	var lastErr error
	for i := 0; i < 3; i++ {
		if _, lastErr = srv.Forecast(ctx, "LSTM", history); lastErr == nil {
			t.Fatalf("request %d succeeded under error:1 injection", i)
		}
	}
	if !errors.Is(lastErr, tango.ErrInjected) {
		t.Fatalf("injected failure = %v, want wrapped ErrInjected", lastErr)
	}

	// Threshold reached: the breaker is open, requests fail fast without
	// touching the (still-failing) engine.
	if _, err := srv.Forecast(ctx, "LSTM", history); !errors.Is(err, tango.ErrDegraded) {
		t.Fatalf("post-trip error = %v, want wrapped ErrDegraded", err)
	}
	rep := srv.Health()
	if rep.Status != tango.HealthDegraded || len(rep.Reasons) == 0 {
		t.Fatalf("health after trip = %+v, want degraded with reasons", rep)
	}
	st := srv.Stats()
	if st.Benchmarks["LSTM"].BreakerState != "open" {
		t.Fatalf("breaker state = %q, want open", st.Benchmarks["LSTM"].BreakerState)
	}
	if st.Shed == 0 {
		t.Fatalf("stats after trip = %+v, want Shed > 0", st)
	}

	// Degraded, not dead: /healthz still answers 200 and the rejection
	// carried a Retry-After hint.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200", resp.StatusCode)
	}

	srv.Close()
	if rep := srv.Health(); rep.Status != tango.HealthDraining {
		t.Fatalf("health after Close = %+v, want draining", rep)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status = %d, want 503", resp.StatusCode)
	}
}

// TestServerPrioritySheddingOrder checks the admission thresholds: with
// the queue at 50-75% occupancy, low priority is shed with a wrapped
// ErrQueueFull while normal priority still proceeds.
func TestServerPrioritySheddingOrder(t *testing.T) {
	srv, err := tango.NewServer([]string{"LSTM"}, tango.ServerConfig{
		MaxBatch:   1,
		QueueDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Stall every batch run so submitted requests pile up in the queue at
	// a known occupancy instead of draining as fast as we submit.
	if err := resilience.Enable("serve.batch.run=latency:1:700ms", 1); err != nil {
		t.Fatal(err)
	}
	defer resilience.Disable()

	history := []float64{0.5, 0.6, 0.7}
	results := make(chan error, 8)
	submit := func(ctx context.Context) {
		go func() {
			_, err := srv.Forecast(ctx, "LSTM", history)
			results <- err
		}()
	}
	// Three admitted requests: one stalled in its batch run, two waiting in
	// the depth-4 queue — 50% occupancy, right at the low-priority
	// threshold and far below the normal one (90%).
	ctx := context.Background()
	submit(ctx)
	submit(ctx)
	submit(ctx)
	deadline := time.After(5 * time.Second)
	for srv.Stats().InFlight < 3 {
		select {
		case <-deadline:
			t.Fatal("submitted requests never became visible")
		case <-time.After(time.Millisecond):
		}
	}

	_, lowErr := srv.Forecast(tango.WithPriority(ctx, tango.PriorityLow), "LSTM", history)
	if !errors.Is(lowErr, tango.ErrQueueFull) {
		t.Fatalf("low-priority error = %v, want wrapped ErrQueueFull", lowErr)
	}
	if st := srv.Stats(); st.Benchmarks["LSTM"].ShedLoad == 0 {
		t.Fatalf("stats after low shed = %+v, want ShedLoad > 0", st.Benchmarks["LSTM"])
	}
	// Normal priority is still admitted at this occupancy; stop stalling
	// so the queue drains promptly.
	submit(ctx)
	resilience.Disable()
	for i := 0; i < 4; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	// With the queue idle again, low priority is admitted normally.
	if _, err := srv.Forecast(tango.WithPriority(ctx, tango.PriorityLow), "LSTM", history); err != nil {
		t.Fatalf("low priority on idle queue: %v", err)
	}
}

// TestParsePriority checks the wire-name round trip and that unknown names
// degrade to the default class.
func TestParsePriority(t *testing.T) {
	for _, p := range []tango.Priority{tango.PriorityLow, tango.PriorityNormal, tango.PriorityHigh} {
		if got := tango.ParsePriority(p.String()); got != p {
			t.Errorf("ParsePriority(%q) = %v, want %v", p.String(), got, p)
		}
	}
	if got := tango.ParsePriority("urgent!!"); got != tango.PriorityNormal {
		t.Errorf("ParsePriority(unknown) = %v, want normal", got)
	}
	ctx := tango.WithPriority(context.Background(), tango.PriorityHigh)
	if got := tango.PriorityFromContext(ctx); got != tango.PriorityHigh {
		t.Errorf("PriorityFromContext = %v, want high", got)
	}
	if got := tango.PriorityFromContext(context.Background()); got != tango.PriorityNormal {
		t.Errorf("PriorityFromContext(default) = %v, want normal", got)
	}
}
