package tango

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"tango/internal/coord"
	"tango/internal/device"
	"tango/internal/distcache"
	"tango/internal/gpusim"
	"tango/internal/networks"
	"tango/internal/nn"
	"tango/internal/par"
	"tango/internal/power"
	"tango/internal/profiler"
	"tango/internal/report"
	"tango/internal/resilience"
	"tango/internal/sched"
	"tango/internal/target"
)

// simSettings collects the simulation options.
type simSettings struct {
	device      device.GPU
	l1Bytes     int
	l1Set       bool
	scheduler   sched.Kind
	sampling    gpusim.Sampling
	parallelism int
	numerics    nn.Numerics
	numericsSet bool
}

// SimOption configures Simulate.
type SimOption func(*simSettings) error

// WithDevice selects the simulated GPU: "GP102" (default, the paper's
// simulator configuration), "GK210" (server) or "TX1" (mobile).
func WithDevice(name string) SimOption {
	return func(s *simSettings) error {
		switch strings.ToUpper(name) {
		case "GP102", "PASCAL", "SIMULATOR":
			s.device = device.PascalGP102()
		case "GK210", "K80", "SERVER":
			s.device = device.GK210()
		case "TX1", "TEGRA", "MOBILE":
			s.device = device.TX1()
		default:
			return fmt.Errorf("tango: unknown device %q (want GP102, GK210 or TX1)", name)
		}
		return nil
	}
}

// WithL1SizeKB sets the per-SM L1 data cache size in kilobytes; zero bypasses
// the L1 entirely (the paper's "No L1" configuration).
func WithL1SizeKB(kb int) SimOption {
	return func(s *simSettings) error {
		if kb < 0 {
			return fmt.Errorf("tango: negative L1 size %d", kb)
		}
		s.l1Bytes = kb << 10
		s.l1Set = true
		return nil
	}
}

// WithScheduler selects the warp scheduler: "gto" (default), "lrr" or "tlv".
func WithScheduler(kind string) SimOption {
	return func(s *simSettings) error {
		k := sched.Kind(strings.ToLower(kind))
		if _, err := sched.New(k); err != nil {
			return err
		}
		s.scheduler = k
		return nil
	}
}

// WithFastSampling selects coarse simulation sampling for quick runs.
func WithFastSampling() SimOption {
	return func(s *simSettings) error {
		s.sampling = gpusim.FastSampling()
		return nil
	}
}

// WithParallelism simulates the benchmark's independent kernels on n worker
// goroutines; n <= 0 selects one worker per available CPU (GOMAXPROCS).
// Results are identical to a serial run.
func WithParallelism(n int) SimOption {
	return func(s *simSettings) error {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.parallelism = n
		return nil
	}
}

// WithFastMath selects the fast-numerics inference tier for native runs:
// weights are packed once per benchmark into kernel-native panel layout and
// convolutions / fully-connected layers run FMA multi-accumulator kernels
// (AVX-512 where the CPU supports it).  Outputs are no longer bit-identical
// to the default tier — they agree within a small relative error
// (~1e-3 worst case) and preserve the top-1 class on every built-in network.
// Simulation (Simulate / Sweep) always models the reference numerics and is
// unaffected.  The TANGO_NUMERICS environment variable ("fast", "int8",
// "reference") selects a default tier for runs that pass no numerics option.
func WithFastMath() SimOption {
	return func(s *simSettings) error {
		s.numerics = nn.NumericsFast
		s.numericsSet = true
		return nil
	}
}

// WithInt8 selects the int8 quantized inference tier for native runs:
// convolution and fully-connected weights are quantized symmetrically per
// output channel at pack time, activations per layer, with exact int32
// accumulation.  The top-1 class is preserved on every built-in network but
// output probabilities carry quantization error (a few percent); recurrent
// gates have no int8 lowering and use the fast float tier instead.
func WithInt8() SimOption {
	return func(s *simSettings) error {
		s.numerics = nn.NumericsInt8
		s.numericsSet = true
		return nil
	}
}

// WithReferenceNumerics forces the default bit-exact tier, overriding a
// TANGO_NUMERICS environment default.
func WithReferenceNumerics() SimOption {
	return func(s *simSettings) error {
		s.numerics = nn.NumericsReference
		s.numericsSet = true
		return nil
	}
}

// WithExhaustiveSimulation disables sampling entirely (only practical for the
// small benchmarks).
func WithExhaustiveSimulation() SimOption {
	return func(s *simSettings) error {
		s.sampling = gpusim.Exhaustive()
		return nil
	}
}

// LayerSimulation summarizes one kernel of a simulated run.
type LayerSimulation struct {
	Layer        string
	Class        string
	Cycles       int64
	Seconds      float64
	Instructions int64
	PowerWatts   float64
	L2MissRatio  float64
}

// SimulationResult summarizes a simulated network execution.
type SimulationResult struct {
	// Network and Device identify the run.
	Network string
	Device  string
	// Cycles and Seconds are the estimated end-to-end execution cost.
	Cycles  int64
	Seconds float64
	// Instructions is the total dynamic instruction count.
	Instructions int64
	// PeakWatts, AvgWatts and EnergyJoules come from the activity-based power
	// model.
	PeakWatts    float64
	AvgWatts     float64
	EnergyJoules float64
	// CyclesByLayerClass groups cycles by reporting class (Figure 1).
	CyclesByLayerClass map[string]int64
	// StallShares is the nvprof-style stall breakdown (Figure 7).
	StallShares map[string]float64
	// OpShares is the dynamic operation mix (Figure 8).
	OpShares map[string]float64
	// IntegerTypeShare is the fraction of integer-typed instructions
	// (Figure 10 / Observation 8).
	IntegerTypeShare float64
	// L2MissRatio is the overall L2 miss ratio.
	L2MissRatio float64
	// MaxRegisterKBPerSM is the peak per-SM register allocation (Figure 12).
	MaxRegisterKBPerSM float64
	// Layers holds per-kernel details in execution order.
	Layers []LayerSimulation
}

// Dataset is the deterministic result of a characterization sweep: one
// record per (network, target, variant) cell, renderable as a table, CSV or
// JSON.
type Dataset = report.Dataset

// SweepRecord is one cell of a sweep dataset.
type SweepRecord = report.Record

// TargetInfo describes one registered accelerator target.
type TargetInfo struct {
	// Name is the canonical registry key, e.g. "gp102" or "pynq".
	Name string
	// Class is the device class ("GPU" or "FPGA").
	Class string
	// Role is the evaluation role, e.g. "Simulator", "Server", "Edge".
	Role string
	// Description names the modeled hardware.
	Description string
	// Aliases are the alternative lookup names.
	Aliases []string
}

// Targets lists the registered accelerator targets in registry order.
func Targets() []TargetInfo {
	reg := target.Builtin()
	var out []TargetInfo
	for _, t := range reg.Targets() {
		out = append(out, TargetInfo{
			Name:        t.Name(),
			Class:       t.Class().String(),
			Role:        t.Role(),
			Description: t.Description(),
			Aliases:     reg.Aliases(t.Name()),
		})
	}
	return out
}

// SweepConfig configures a multi-device characterization sweep: the cross
// product of networks, targets and configuration variants, every cell derived
// from the shared layer traces.
type SweepConfig struct {
	// Networks restricts the benchmarks (nil = the full seven-network suite).
	Networks []string
	// Targets are registry names or aliases (nil = the GP102 simulator
	// configuration).  See Targets for the registry.
	Targets []string
	// L1SizesKB adds one configuration variant per entry overriding the
	// per-SM L1D size; 0 bypasses the L1.  Empty keeps each target's default.
	L1SizesKB []int
	// Schedulers adds one configuration variant per entry overriding the
	// warp scheduler ("gto", "lrr", "tlv").  Empty keeps the default.
	// When both L1SizesKB and Schedulers are set the sweep runs their cross
	// product.
	Schedulers []string
	// FastSampling selects coarse simulator sampling for quick sweeps.
	FastSampling bool
	// Parallelism fans the sweep cells out over n worker goroutines; n <= 1
	// (including the zero value) runs serially.  The dataset is identical
	// either way.
	Parallelism int
	// CellTimeout bounds each cell's computation; a cell that exceeds it
	// fails with context.DeadlineExceeded (and is retried if CellRetries is
	// set).  Zero means no per-cell bound.  An abandoned computation keeps
	// running in the background and caches its complete result for the
	// retry; partial results are never cached.
	CellTimeout time.Duration
	// CellRetries is how many times a failed cell is retried (with capped
	// exponential backoff) before its failure is final.  Zero means one
	// attempt, no retries.
	CellRetries int
	// Partial keeps the sweep going past failed cells: instead of aborting
	// the whole sweep, a cell whose attempts are exhausted contributes a
	// record with its identity columns filled, zero statistics and the
	// failure message in the Err field.  Cancellation of the sweep's own
	// context still aborts (it is the caller giving up, not a cell
	// failing).
	Partial bool
	// Numerics annotates every record with the compute-engine numerics
	// tier the characterized deployment runs under: "" or "reference"
	// (default), "fast" or "int8".  The simulated statistics themselves
	// always model the reference kernels; the column keys the dataset so
	// downstream tooling can join it against fast-tier throughput
	// measurements without ambiguity.
	Numerics string
	// Workers distributes the sweep: each entry is a tango-char worker
	// address (host:port or http:// URL) and cells are sharded across them
	// round-robin by cell index.  A cell whose worker fails — unreachable,
	// circuit breaker open, queue full, mismatched build — is computed
	// locally instead, so worker failures degrade throughput, never the
	// dataset.  Remote results flow through the same run cache as local
	// ones and the merged dataset is byte-identical to a single-process
	// sweep of the same cells.  Empty runs everything locally.
	Workers []string
	// CacheDir attaches a persistent on-disk run cache: the sweep uses a
	// private store (empty in-memory tier) over the directory, so a cold
	// sweep populates it and an identical sweep in a fresh process — or
	// with the same CacheDir in this one — replays from disk without
	// running the simulator.  Empty uses the process-wide in-memory store
	// (plus TANGO_CACHE_DIR if set).
	CacheDir string
	// CacheStats, when non-nil, receives a snapshot of the backing store's
	// cache counters after the sweep — Computes says how many cells
	// actually ran a simulator backend (zero for a fully warm sweep).
	CacheStats *CacheStats
	// CacheMaxMB bounds the CacheDir disk tier's size in MiB; 0 leaves it
	// unbounded.  Once a store pushes the tier past the bound, the oldest
	// records (by file modification time) are evicted down to 90% of it,
	// so long sweep campaigns churn the stale tail instead of growing the
	// directory without bound.
	CacheMaxMB int
}

// CacheStats is a snapshot of a run store's cache traffic; see
// SweepConfig.CacheStats.
type CacheStats = target.StoreStats

// envCacheOnce attaches TANGO_CACHE_DIR to the process-wide store the
// first time a sweep or experiment session runs.  Failures are soft: an
// unopenable directory leaves the store memory-only.
var envCacheOnce sync.Once

func attachEnvDiskCache() {
	envCacheOnce.Do(func() {
		dir := os.Getenv("TANGO_CACHE_DIR")
		if dir == "" {
			return
		}
		if d, err := distcache.Open(dir); err == nil {
			if mb, err := strconv.Atoi(os.Getenv("TANGO_CACHE_MAX_MB")); err == nil && mb > 0 {
				d.SetMaxBytes(int64(mb) << 20)
			}
			target.Shared().SetDisk(d)
		}
	})
}

// sweepVariants expands the config's L1/scheduler dimensions into the variant
// list, cross-producting them when both are set.
func sweepVariants(cfg SweepConfig, sampling gpusim.Sampling) ([]target.Variant, error) {
	type l1opt struct {
		key   string
		bytes int
		set   bool
	}
	l1s := []l1opt{{key: "", set: false}}
	if len(cfg.L1SizesKB) > 0 {
		l1s = nil
		for _, kb := range cfg.L1SizesKB {
			if kb < 0 {
				return nil, fmt.Errorf("tango: negative L1 size %dKB", kb)
			}
			key := fmt.Sprintf("l1-%dkb", kb)
			if kb == 0 {
				key = "nol1"
			}
			l1s = append(l1s, l1opt{key: key, bytes: kb << 10, set: true})
		}
	}
	scheds := []sched.Kind{""}
	if len(cfg.Schedulers) > 0 {
		scheds = nil
		for _, name := range cfg.Schedulers {
			k := sched.Kind(strings.ToLower(name))
			if _, err := sched.New(k); err != nil {
				return nil, err
			}
			scheds = append(scheds, k)
		}
	}
	var out []target.Variant
	for _, l1 := range l1s {
		for _, k := range scheds {
			v := target.DefaultVariant(sampling)
			var parts []string
			if l1.set {
				v.L1Bytes = l1.bytes
				v.L1Set = true
				parts = append(parts, l1.key)
			}
			if k != "" {
				v.Scheduler = k
				parts = append(parts, "sched-"+string(k))
			}
			if len(parts) == 0 {
				v.Key = "default"
			} else {
				v.Key = strings.Join(parts, "+")
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// sweepStore supplies the store backing Sweep: the process-wide shared store,
// overridden only by white-box determinism tests that need cold runs.
var sweepStore = target.Shared

// Sweep runs the {networks x targets x variants} characterization matrix and
// returns one dataset record per cell in deterministic sweep order (networks
// outermost, then targets, then variants), regardless of parallelism.
//
// Every cell is derived from the shared layer-trace store: each network is
// lowered once and each effective (target, configuration) run is computed
// once per process, so sweeps compose cheaply with experiment sessions and
// with each other.  FPGA-class targets are configuration-insensitive and run
// their default variant only.
func Sweep(cfg SweepConfig) (*Dataset, error) {
	return SweepContext(context.Background(), cfg)
}

// SweepContext is Sweep bounded by a context: cancellation stops
// dispatching new cells and returns promptly with ctx's error.  Per-cell
// timeouts, retries and partial datasets are configured on SweepConfig.
func SweepContext(ctx context.Context, cfg SweepConfig) (*Dataset, error) {
	nets := cfg.Networks
	if len(nets) == 0 {
		nets = networks.Names()
	}
	reg := target.Builtin()
	targetNames := cfg.Targets
	if len(targetNames) == 0 {
		targetNames = []string{"gp102"}
	}
	targets := make([]target.Target, 0, len(targetNames))
	for _, name := range targetNames {
		t, err := reg.Lookup(name)
		if err != nil {
			return nil, err
		}
		targets = append(targets, t)
	}
	sampling := gpusim.DefaultSampling()
	if cfg.FastSampling {
		sampling = gpusim.FastSampling()
	}
	variants, err := sweepVariants(cfg, sampling)
	if err != nil {
		return nil, err
	}
	numerics, err := nn.ParseNumerics(cfg.Numerics)
	if err != nil {
		return nil, fmt.Errorf("tango: sweep: %w", err)
	}
	numericsCol := ""
	if numerics != nn.NumericsReference {
		numericsCol = numerics.String()
	}

	type sweepCell struct {
		t target.Target
		n string
		v target.Variant
	}
	var cells []sweepCell
	for _, n := range nets {
		for _, t := range targets {
			for _, v := range variants {
				if t.Class() == device.ClassFPGA && v.Key != variants[0].Key {
					// The dataflow model ignores every GPU knob; one default
					// cell per network keeps the dataset free of duplicates.
					continue
				}
				cells = append(cells, sweepCell{t: t, n: n, v: v})
			}
		}
	}

	attachEnvDiskCache()
	store := sweepStore()
	if cfg.CacheDir != "" {
		// A private store over the directory: the empty memory tier means
		// every cell consults the disk, which is exactly the fresh-process
		// warm-sweep semantics the cache exists for.
		d, derr := distcache.Open(cfg.CacheDir)
		if derr != nil {
			return nil, fmt.Errorf("tango: sweep cache: %w", derr)
		}
		if cfg.CacheMaxMB > 0 {
			d.SetMaxBytes(int64(cfg.CacheMaxMB) << 20)
		}
		store = target.NewStore()
		store.SetDisk(d)
	}
	var pool *coord.Pool
	if len(cfg.Workers) > 0 {
		pool, err = coord.NewPool(cfg.Workers, coord.PoolConfig{})
		if err != nil {
			return nil, fmt.Errorf("tango: sweep: %w", err)
		}
		if cfg.Parallelism <= 1 {
			// Cells spend their time waiting on remote workers; give the
			// dispatcher enough concurrency to keep every worker busy.
			cfg.Parallelism = 2 * pool.Len()
		}
	}
	records := make([]report.Record, len(cells))
	backoff := resilience.Backoff{Attempts: cfg.CellRetries + 1}
	err = par.ForEachCtx(ctx, cfg.Parallelism, len(cells), func(i int) error {
		c := cells[i]
		key := c.v.Key
		if c.t.Class() == device.ClassFPGA {
			key = "default"
		}
		var rs *target.RunStats
		runErr := resilience.Retry(ctx, backoff, func(ctx context.Context) error {
			cellCtx, cancel := resilience.WithBudget(ctx, cfg.CellTimeout)
			defer cancel()
			var compute target.ComputeFunc
			if pool != nil {
				compute = func(tr *target.Trace) (*target.RunStats, error) {
					rs, ferr := pool.Fetch(cellCtx, i, c.t, c.n, c.v, tr)
					if ferr == nil {
						return rs, nil
					}
					if cellCtx.Err() != nil {
						return nil, ferr
					}
					// The worker failed this cell; compute it here so a
					// dead worker costs throughput, not the dataset.
					return store.ComputeCell(tr, c.t, c.v)
				}
			}
			var err error
			rs, err = store.RunVia(cellCtx, c.t, c.n, c.v, compute)
			return err
		})
		if runErr != nil {
			// The caller giving up is not a cell failure: propagate it so
			// the sweep aborts instead of recording a partial cell.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if !cfg.Partial {
				return fmt.Errorf("tango: sweep %s on %s (%s): %w", c.n, c.t.Name(), key, runErr)
			}
			records[i] = report.Record{
				Network:  c.n,
				Target:   c.t.Name(),
				Class:    c.t.Class().String(),
				Variant:  key,
				Err:      runErr.Error(),
				Numerics: numericsCol,
			}
			return nil
		}
		records[i] = report.Record{
			Network:      rs.Network,
			Target:       rs.Target,
			Class:        rs.Class.String(),
			Variant:      key,
			Cycles:       rs.Cycles,
			Seconds:      rs.Seconds,
			Instructions: rs.Instructions,
			PeakWatts:    rs.PeakWatts,
			AvgWatts:     rs.AvgWatts,
			EnergyJoules: rs.EnergyJoules,
			L2MissRatio:  rs.L2MissRatio,
			Numerics:     numericsCol,
		}
		return nil
	})
	if cfg.CacheStats != nil {
		*cfg.CacheStats = store.Stats()
	}
	if err != nil {
		return nil, err
	}
	return &Dataset{Records: records}, nil
}

// Simulate runs every kernel of the benchmark on the architecture simulator
// and derives timing, power and memory-system statistics.
func (b *Benchmark) Simulate(opts ...SimOption) (*SimulationResult, error) {
	settings := simSettings{
		device:    device.PascalGP102(),
		scheduler: sched.GTO,
		sampling:  gpusim.DefaultSampling(),
	}
	for _, opt := range opts {
		if err := opt(&settings); err != nil {
			return nil, err
		}
	}
	cfg := gpusim.ConfigFor(settings.device).
		WithScheduler(settings.scheduler).
		WithSampling(settings.sampling).
		WithParallelism(settings.parallelism)
	if settings.l1Set {
		cfg = cfg.WithL1Size(settings.l1Bytes)
	}
	rs, err := b.inner.Simulate(cfg)
	if err != nil {
		return nil, err
	}

	pm := power.NewModel(settings.device)
	np := pm.NetworkPower(rs)

	res := &SimulationResult{
		Network:            b.Name(),
		Device:             settings.device.Name,
		Cycles:             rs.TotalCycles(),
		Seconds:            rs.TotalSeconds(),
		PeakWatts:          np.PeakWatts,
		AvgWatts:           np.AvgWatts,
		EnergyJoules:       np.TotalEnergyJoules,
		CyclesByLayerClass: rs.CyclesByClass(),
		StallShares:        map[string]float64{},
		OpShares:           map[string]float64{},
		IntegerTypeShare:   profiler.IntegerShare(rs),
	}
	for _, ks := range rs.Kernels {
		res.Instructions += ks.TotalThreadInstructions
	}
	for reason, share := range profiler.StallBreakdownTotal(rs) {
		res.StallShares[reason.String()] = share
	}
	for _, op := range profiler.OpBreakdown(rs) {
		res.OpShares[op.Op] = op.Share
	}
	var l2 int64
	var l2Miss int64
	for _, ks := range rs.Kernels {
		l2 += ks.L2.Accesses
		l2Miss += ks.L2.Misses + ks.L2.MergedMiss
	}
	if l2 > 0 {
		res.L2MissRatio = float64(l2Miss) / float64(l2)
	}
	res.MaxRegisterKBPerSM = profiler.Registers(rs).KBAllocated()

	for i, ks := range rs.Kernels {
		res.Layers = append(res.Layers, LayerSimulation{
			Layer:        ks.Kernel.LayerName,
			Class:        ks.Kernel.Class,
			Cycles:       ks.Cycles,
			Seconds:      ks.Seconds,
			Instructions: ks.TotalThreadInstructions,
			PowerWatts:   np.PerKernel[i].TotalWatts,
			L2MissRatio:  ks.L2.MissRatio(),
		})
	}
	return res, nil
}
