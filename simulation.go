package tango

import (
	"fmt"
	"runtime"
	"strings"

	"tango/internal/device"
	"tango/internal/gpusim"
	"tango/internal/power"
	"tango/internal/profiler"
	"tango/internal/sched"
)

// simSettings collects the simulation options.
type simSettings struct {
	device      device.GPU
	l1Bytes     int
	l1Set       bool
	scheduler   sched.Kind
	sampling    gpusim.Sampling
	parallelism int
}

// SimOption configures Simulate.
type SimOption func(*simSettings) error

// WithDevice selects the simulated GPU: "GP102" (default, the paper's
// simulator configuration), "GK210" (server) or "TX1" (mobile).
func WithDevice(name string) SimOption {
	return func(s *simSettings) error {
		switch strings.ToUpper(name) {
		case "GP102", "PASCAL", "SIMULATOR":
			s.device = device.PascalGP102()
		case "GK210", "K80", "SERVER":
			s.device = device.GK210()
		case "TX1", "TEGRA", "MOBILE":
			s.device = device.TX1()
		default:
			return fmt.Errorf("tango: unknown device %q (want GP102, GK210 or TX1)", name)
		}
		return nil
	}
}

// WithL1SizeKB sets the per-SM L1 data cache size in kilobytes; zero bypasses
// the L1 entirely (the paper's "No L1" configuration).
func WithL1SizeKB(kb int) SimOption {
	return func(s *simSettings) error {
		if kb < 0 {
			return fmt.Errorf("tango: negative L1 size %d", kb)
		}
		s.l1Bytes = kb << 10
		s.l1Set = true
		return nil
	}
}

// WithScheduler selects the warp scheduler: "gto" (default), "lrr" or "tlv".
func WithScheduler(kind string) SimOption {
	return func(s *simSettings) error {
		k := sched.Kind(strings.ToLower(kind))
		if _, err := sched.New(k); err != nil {
			return err
		}
		s.scheduler = k
		return nil
	}
}

// WithFastSampling selects coarse simulation sampling for quick runs.
func WithFastSampling() SimOption {
	return func(s *simSettings) error {
		s.sampling = gpusim.FastSampling()
		return nil
	}
}

// WithParallelism simulates the benchmark's independent kernels on n worker
// goroutines; n <= 0 selects one worker per available CPU (GOMAXPROCS).
// Results are identical to a serial run.
func WithParallelism(n int) SimOption {
	return func(s *simSettings) error {
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		s.parallelism = n
		return nil
	}
}

// WithExhaustiveSimulation disables sampling entirely (only practical for the
// small benchmarks).
func WithExhaustiveSimulation() SimOption {
	return func(s *simSettings) error {
		s.sampling = gpusim.Exhaustive()
		return nil
	}
}

// LayerSimulation summarizes one kernel of a simulated run.
type LayerSimulation struct {
	Layer        string
	Class        string
	Cycles       int64
	Seconds      float64
	Instructions int64
	PowerWatts   float64
	L2MissRatio  float64
}

// SimulationResult summarizes a simulated network execution.
type SimulationResult struct {
	// Network and Device identify the run.
	Network string
	Device  string
	// Cycles and Seconds are the estimated end-to-end execution cost.
	Cycles  int64
	Seconds float64
	// Instructions is the total dynamic instruction count.
	Instructions int64
	// PeakWatts, AvgWatts and EnergyJoules come from the activity-based power
	// model.
	PeakWatts    float64
	AvgWatts     float64
	EnergyJoules float64
	// CyclesByLayerClass groups cycles by reporting class (Figure 1).
	CyclesByLayerClass map[string]int64
	// StallShares is the nvprof-style stall breakdown (Figure 7).
	StallShares map[string]float64
	// OpShares is the dynamic operation mix (Figure 8).
	OpShares map[string]float64
	// IntegerTypeShare is the fraction of integer-typed instructions
	// (Figure 10 / Observation 8).
	IntegerTypeShare float64
	// L2MissRatio is the overall L2 miss ratio.
	L2MissRatio float64
	// MaxRegisterKBPerSM is the peak per-SM register allocation (Figure 12).
	MaxRegisterKBPerSM float64
	// Layers holds per-kernel details in execution order.
	Layers []LayerSimulation
}

// Simulate runs every kernel of the benchmark on the architecture simulator
// and derives timing, power and memory-system statistics.
func (b *Benchmark) Simulate(opts ...SimOption) (*SimulationResult, error) {
	settings := simSettings{
		device:    device.PascalGP102(),
		scheduler: sched.GTO,
		sampling:  gpusim.DefaultSampling(),
	}
	for _, opt := range opts {
		if err := opt(&settings); err != nil {
			return nil, err
		}
	}
	cfg := gpusim.ConfigFor(settings.device).
		WithScheduler(settings.scheduler).
		WithSampling(settings.sampling).
		WithParallelism(settings.parallelism)
	if settings.l1Set {
		cfg = cfg.WithL1Size(settings.l1Bytes)
	}
	rs, err := b.inner.Simulate(cfg)
	if err != nil {
		return nil, err
	}

	pm := power.NewModel(settings.device)
	np := pm.NetworkPower(rs)

	res := &SimulationResult{
		Network:            b.Name(),
		Device:             settings.device.Name,
		Cycles:             rs.TotalCycles(),
		Seconds:            rs.TotalSeconds(),
		PeakWatts:          np.PeakWatts,
		AvgWatts:           np.AvgWatts,
		EnergyJoules:       np.TotalEnergyJoules,
		CyclesByLayerClass: rs.CyclesByClass(),
		StallShares:        map[string]float64{},
		OpShares:           map[string]float64{},
		IntegerTypeShare:   profiler.IntegerShare(rs),
	}
	for _, ks := range rs.Kernels {
		res.Instructions += ks.TotalThreadInstructions
	}
	for reason, share := range profiler.StallBreakdownTotal(rs) {
		res.StallShares[reason.String()] = share
	}
	for _, op := range profiler.OpBreakdown(rs) {
		res.OpShares[op.Op] = op.Share
	}
	var l2 int64
	var l2Miss int64
	for _, ks := range rs.Kernels {
		l2 += ks.L2.Accesses
		l2Miss += ks.L2.Misses + ks.L2.MergedMiss
	}
	if l2 > 0 {
		res.L2MissRatio = float64(l2Miss) / float64(l2)
	}
	res.MaxRegisterKBPerSM = profiler.Registers(rs).KBAllocated()

	for i, ks := range rs.Kernels {
		res.Layers = append(res.Layers, LayerSimulation{
			Layer:        ks.Kernel.LayerName,
			Class:        ks.Kernel.Class,
			Cycles:       ks.Cycles,
			Seconds:      ks.Seconds,
			Instructions: ks.TotalThreadInstructions,
			PowerWatts:   np.PerKernel[i].TotalWatts,
			L2MissRatio:  ks.L2.MissRatio(),
		})
	}
	return res, nil
}
