// Tests for the unified characterization pipeline: golden byte-identity of
// every experiment table (serial and parallel), the multi-device sweep
// engine, and the trace-store reuse the pipeline is built around.
package tango_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"tango"
)

// goldenPath locates the committed fixture of one experiment table, rendered
// with fast sampling over the full suite.
func goldenPath(id string) string {
	return filepath.Join("internal", "bench", "testdata", "golden", id+".golden")
}

// TestGoldenFiguresByteIdentical renders every experiment — serially and
// with the parallel fan-out — and compares each table byte-for-byte against
// the committed fixtures, locking the refactored pipeline to the exact
// pre-refactor output.
func TestGoldenFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment matrix skipped in -short mode")
	}
	check := func(t *testing.T, tabs []*tango.Table) {
		t.Helper()
		if len(tabs) != len(tango.Experiments()) {
			t.Fatalf("got %d tables, want %d", len(tabs), len(tango.Experiments()))
		}
		for _, tab := range tabs {
			want, err := os.ReadFile(goldenPath(tab.ID))
			if err != nil {
				t.Fatalf("%s: missing fixture: %v", tab.ID, err)
			}
			if got := tab.String(); got != string(want) {
				t.Errorf("%s: output differs from golden fixture\n--- got ---\n%s\n--- want ---\n%s",
					tab.ID, got, want)
			}
		}
	}

	t.Run("serial", func(t *testing.T) {
		tabs, err := tango.NewExperimentSession(tango.WithFastExperimentSampling()).RunAll()
		if err != nil {
			t.Fatal(err)
		}
		check(t, tabs)
	})

	// The parallel session uses an isolated cache so the concurrent fan-out
	// genuinely recomputes every cell rather than reading the serial run's.
	t.Run("parallel", func(t *testing.T) {
		tabs, err := tango.NewExperimentSession(
			tango.WithFastExperimentSampling(),
			tango.WithExperimentParallelism(8),
			tango.WithIsolatedCache()).RunAll()
		if err != nil {
			t.Fatal(err)
		}
		check(t, tabs)
	})
}

// TestSweepEngine drives a multi-device sweep through the single tango.Sweep
// entry point: GPU, edge-GPU and FPGA targets over two networks, asserting
// deterministic shape and serial/parallel identity.
func TestSweepEngine(t *testing.T) {
	cfg := tango.SweepConfig{
		Networks:     []string{"GRU", "CifarNet"},
		Targets:      []string{"gp102", "tx1", "pynq"},
		FastSampling: true,
	}
	serial, err := tango.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 networks x 3 targets, one default variant each.
	if serial.Len() != 6 {
		t.Fatalf("sweep produced %d records, want 6", serial.Len())
	}
	// Deterministic order: networks outermost, then targets in request order.
	wantOrder := []string{
		"GRU/gp102", "GRU/tx1", "GRU/pynq",
		"CifarNet/gp102", "CifarNet/tx1", "CifarNet/pynq",
	}
	for i, r := range serial.Records {
		if got := r.Network + "/" + r.Target; got != wantOrder[i] {
			t.Errorf("record %d = %s, want %s", i, got, wantOrder[i])
		}
		if r.Seconds <= 0 || r.PeakWatts <= 0 || r.EnergyJoules <= 0 {
			t.Errorf("record %d has non-positive summary fields: %+v", i, r)
		}
		if r.Class == "FPGA" && (r.Cycles != 0 || r.Instructions != 0) {
			t.Errorf("FPGA record %d should have no GPU-only fields: %+v", i, r)
		}
		if r.Class == "GPU" && (r.Cycles <= 0 || r.Instructions <= 0) {
			t.Errorf("GPU record %d should report cycles and instructions: %+v", i, r)
		}
	}

	// Both sweeps share the process-wide store, so this checks the parallel
	// record assembly; the cold-store recompute determinism check lives in
	// TestSweepParallelDeterminismColdStore (white-box, fresh stores).
	cfg.Parallelism = 8
	parallel, err := tango.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("parallel sweep dataset differs from serial")
	}
}

// TestSweepVariantDimensions asserts the L1 x scheduler cross product and
// the FPGA's collapse to a single configuration-insensitive cell.
func TestSweepVariantDimensions(t *testing.T) {
	ds, err := tango.Sweep(tango.SweepConfig{
		Networks:     []string{"GRU"},
		Targets:      []string{"gp102", "pynq"},
		L1SizesKB:    []int{0, 64},
		Schedulers:   []string{"gto", "lrr"},
		FastSampling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// GPU: 2 L1 sizes x 2 schedulers; FPGA: one cell.
	if ds.Len() != 5 {
		t.Fatalf("sweep produced %d records, want 5", ds.Len())
	}
	variants := map[string]int{}
	for _, r := range ds.Records {
		variants[r.Target+"/"+r.Variant]++
	}
	for _, want := range []string{
		"gp102/nol1+sched-gto", "gp102/nol1+sched-lrr",
		"gp102/l1-64kb+sched-gto", "gp102/l1-64kb+sched-lrr",
		"pynq/default",
	} {
		if variants[want] != 1 {
			t.Errorf("missing sweep cell %s (got %v)", want, variants)
		}
	}
}

// TestSweepRejectsBadConfig covers the sweep engine's validation surface.
func TestSweepRejectsBadConfig(t *testing.T) {
	if _, err := tango.Sweep(tango.SweepConfig{Targets: []string{"a100"}}); err == nil {
		t.Error("unknown target should fail")
	}
	if _, err := tango.Sweep(tango.SweepConfig{
		Networks: []string{"GRU"}, FastSampling: true, L1SizesKB: []int{-1},
	}); err == nil {
		t.Error("negative L1 size should fail")
	}
	if _, err := tango.Sweep(tango.SweepConfig{
		Networks: []string{"GRU"}, FastSampling: true, Schedulers: []string{"fifo"},
	}); err == nil {
		t.Error("unknown scheduler should fail")
	}
	if _, err := tango.Sweep(tango.SweepConfig{
		Networks: []string{"NoSuchNet"}, FastSampling: true,
	}); err == nil {
		t.Error("unknown network should fail")
	}
}

// TestTargetsRegistry sanity-checks the public registry listing.
func TestTargetsRegistry(t *testing.T) {
	targets := tango.Targets()
	if len(targets) != 4 {
		t.Fatalf("expected 4 builtin targets, got %d", len(targets))
	}
	byName := map[string]tango.TargetInfo{}
	for _, ti := range targets {
		byName[ti.Name] = ti
	}
	if byName["gp102"].Class != "GPU" || byName["pynq"].Class != "FPGA" {
		t.Errorf("unexpected classes: %+v", byName)
	}
	if byName["tx1"].Role != "Edge" {
		t.Errorf("tx1 should be the edge GPU, got %+v", byName["tx1"])
	}
	found := false
	for _, a := range byName["gp102"].Aliases {
		if a == "simulator" {
			found = true
		}
	}
	if !found {
		t.Errorf("gp102 should keep its simulator alias, got %v", byName["gp102"].Aliases)
	}
}
