package tango_test

import (
	"strings"
	"testing"

	"tango"
)

func TestExtensionBenchmarks(t *testing.T) {
	exts := tango.ExtensionBenchmarks()
	if len(exts) != 1 || exts[0] != "MobileNet" {
		t.Fatalf("ExtensionBenchmarks() = %v, want [MobileNet]", exts)
	}
	for _, name := range tango.Benchmarks() {
		if name == "MobileNet" {
			t.Error("extensions must not appear in the core benchmark list")
		}
	}
}

func TestMobileNetExtensionEndToEnd(t *testing.T) {
	b, err := tango.LoadBenchmark("MobileNet")
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.Describe()
	if err != nil {
		t.Fatal(err)
	}
	if desc.Kind != "CNN" || desc.Classes != 1000 {
		t.Errorf("MobileNet identity wrong: %+v", desc)
	}
	// MobileNet v1 has ~4.2M parameters, an order of magnitude below AlexNet.
	if desc.Parameters < 3_000_000 || desc.Parameters > 6_000_000 {
		t.Errorf("MobileNet parameters = %d, want ~4.2M", desc.Parameters)
	}
	// The lowered kernels must validate and simulate.
	if len(b.Kernels()) != desc.Layers {
		t.Errorf("kernels %d, layers %d", len(b.Kernels()), desc.Layers)
	}
	sim, err := b.Simulate(tango.WithFastSampling())
	if err != nil {
		t.Fatal(err)
	}
	if sim.Cycles <= 0 {
		t.Error("MobileNet simulation produced no cycles")
	}
	// Depthwise-separable networks are still convolution-dominated.
	conv := sim.CyclesByLayerClass["Conv"]
	if conv*2 < sim.Cycles {
		t.Errorf("conv cycles %d should dominate MobileNet's %d total", conv, sim.Cycles)
	}
}

func TestDisassemble(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	text, err := b.Disassemble("conv1")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"prologue:", "mad.f32", "ld.f32.global"} {
		if !containsStr(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
	if _, err := b.Disassemble("nosuchlayer"); err == nil {
		t.Error("unknown layer should fail")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && strings.Contains(haystack, needle)
}

func TestDialects(t *testing.T) {
	cases := map[string][]string{
		"CifarNet": {"CUDA", "OpenCL"},
		"AlexNet":  {"CUDA", "OpenCL"},
		"ResNet":   {"CUDA"},
		"GRU":      {"CUDA"},
	}
	for name, want := range cases {
		b, err := tango.LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		got := b.Dialects()
		if len(got) != len(want) {
			t.Errorf("%s dialects = %v, want %v", name, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s dialects = %v, want %v", name, got, want)
				break
			}
		}
	}
}
