package tango_test

import (
	"context"
	"testing"
	"time"

	"tango"
)

// TestServerOnDemandLoading checks that WithOnDemandLoading defers engine
// loads to first use: construction validates names without loading, the
// first request loads exactly its model, and untouched models stay cold.
func TestServerOnDemandLoading(t *testing.T) {
	srv, err := tango.NewServer([]string{"GRU", "LSTM"}, tango.ServerConfig{},
		tango.WithOnDemandLoading(), tango.WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	st := srv.Stats()
	if st.ResidentModels != 0 {
		t.Fatalf("cold server has %d resident models, want 0", st.ResidentModels)
	}
	for name, b := range st.Benchmarks {
		if b.Resident || b.Loads != 0 {
			t.Fatalf("%s loaded before any request: %+v", name, b)
		}
	}

	history := []float64{0.4, 0.5, 0.6}
	if _, err := srv.Forecast(context.Background(), "GRU", history); err != nil {
		t.Fatal(err)
	}
	st = srv.Stats()
	if g := st.Benchmarks["GRU"]; !g.Resident || g.Loads != 1 || g.ResidentBytes <= 0 {
		t.Fatalf("GRU after first request: %+v", g)
	}
	if l := st.Benchmarks["LSTM"]; l.Resident || l.Loads != 0 {
		t.Fatalf("LSTM loaded without a request: %+v", l)
	}
	if st.ResidentModels != 1 || st.ResidentBytes != st.Benchmarks["GRU"].ResidentBytes {
		t.Fatalf("server residency: %+v", st)
	}

	// Unknown names still fail fast at construction, before any load.
	if _, err := tango.NewServer([]string{"NoSuchNet"}, tango.ServerConfig{}, tango.WithOnDemandLoading()); err == nil {
		t.Fatal("NewServer accepted an unknown benchmark under on-demand loading")
	}
}

// TestServerModelBudgetEviction checks the LRU lifecycle: a budget too small
// for two engines evicts the least-recently-used idle model when the second
// loads, the evicted model's counters survive, and its next request reloads
// it transparently.
func TestServerModelBudgetEviction(t *testing.T) {
	// A 1-byte budget forces every load over budget, so loading any second
	// model must evict the idle first one.
	srv, err := tango.NewServer([]string{"GRU", "LSTM"}, tango.ServerConfig{},
		tango.WithModelBudget(1), tango.WithMaxBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx := context.Background()
	history := []float64{0.4, 0.5, 0.6}
	if _, err := srv.Forecast(ctx, "GRU", history); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); !st.Benchmarks["GRU"].Resident {
		t.Fatalf("GRU not resident after request: %+v", st.Benchmarks["GRU"])
	}

	if _, err := srv.Forecast(ctx, "LSTM", history); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if g := st.Benchmarks["GRU"]; g.Resident || g.Evictions != 1 {
		t.Fatalf("GRU should be evicted by LSTM load: %+v", g)
	}
	if l := st.Benchmarks["LSTM"]; !l.Resident {
		t.Fatalf("LSTM not resident: %+v", l)
	}
	// Lifetime counters survive the eviction.
	if g := st.Benchmarks["GRU"]; g.Submitted != 1 || g.Completed != 1 {
		t.Fatalf("GRU counters lost across eviction: %+v", g)
	}

	// The evicted model reloads transparently on its next request, evicting
	// LSTM in turn, and its counters keep accumulating.
	if _, err := srv.Forecast(ctx, "GRU", history); err != nil {
		t.Fatalf("request to evicted model: %v", err)
	}
	st = srv.Stats()
	g := st.Benchmarks["GRU"]
	if !g.Resident || g.Loads != 2 || g.Submitted != 2 || g.Completed != 2 {
		t.Fatalf("GRU after reload: %+v", g)
	}
	if l := st.Benchmarks["LSTM"]; l.Resident || l.Evictions != 1 {
		t.Fatalf("LSTM should be evicted by GRU reload: %+v", l)
	}
	if st.ResidentModels != 1 {
		t.Fatalf("resident models = %d, want 1", st.ResidentModels)
	}
}

// TestServeOptionsLowering checks that the ServerConfig compatibility struct
// and explicit ServeOptions configure the same server, with options applied
// after the struct winning.
func TestServeOptionsLowering(t *testing.T) {
	srv, err := tango.NewServer([]string{"GRU"}, tango.ServerConfig{
		MaxBatch:  2,
		TargetP99: time.Second,
		Numerics:  "reference",
	}, tango.WithMaxBatch(4), tango.WithQueueDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	st := srv.Stats()
	if st.NumericsTier != "reference" {
		t.Fatalf("numerics tier = %q", st.NumericsTier)
	}
	if st.TargetP99Micros != 1e6 {
		t.Fatalf("target p99 = %v us, want 1e6", st.TargetP99Micros)
	}
	if got := st.Benchmarks["GRU"].QueueCap; got != 8 {
		t.Fatalf("queue cap = %d, want 8 (option should override)", got)
	}
	if _, err := srv.Forecast(context.Background(), "GRU", []float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}
	if hist := srv.Stats().Benchmarks["GRU"].BatchSizeHist; len(hist) != 4 {
		t.Fatalf("batch hist len %d, want MaxBatch 4 from option", len(hist))
	}
}
