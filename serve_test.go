package tango_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"tango"
)

// newTestServer starts a server on CifarNet + LSTM with a batching window
// wide enough that concurrent submissions coalesce.
func newTestServer(t *testing.T) *tango.Server {
	t.Helper()
	srv, err := tango.NewServer([]string{"CifarNet", "LSTM"}, tango.ServerConfig{
		MaxBatch:   8,
		MaxDelay:   2 * time.Millisecond,
		QueueDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// TestServerClassifyBitExact drives concurrent classify requests through the
// dynamic batcher and bit-compares every response against the single-sample
// Classify path: batching must change scheduling, never numerics.
func TestServerClassifyBitExact(t *testing.T) {
	srv := newTestServer(t)
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}

	const n = 24
	images := make([][]float32, n)
	want := make([]*tango.Classification, n)
	for i := range images {
		img, _, err := b.SampleImage(uint64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		images[i] = img
		want[i], err = b.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
	}

	got := make([]tango.BatchClassification, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = srv.Classify(context.Background(), "CifarNet", images[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if got[i].Class != want[i].Class {
			t.Fatalf("request %d: class %d, want %d", i, got[i].Class, want[i].Class)
		}
		sameProbs(t, fmt.Sprintf("request %d", i), got[i].Probabilities, want[i].Probabilities)
	}

	st := srv.Stats()
	cn := st.Benchmarks["CifarNet"]
	if cn.Completed != n {
		t.Fatalf("completed %d, want %d", cn.Completed, n)
	}
	if cn.RejectedQueueFull != 0 {
		t.Fatalf("%d requests rejected at default depth", cn.RejectedQueueFull)
	}
}

// TestServerForecastBitExact checks batched serving of RNN requests,
// including histories of different lengths submitted concurrently (the
// scheduler must group equal lengths per engine call instead of failing the
// whole batch as ragged).
func TestServerForecastBitExact(t *testing.T) {
	srv := newTestServer(t)
	b, err := tango.LoadBenchmark("LSTM")
	if err != nil {
		t.Fatal(err)
	}

	const n = 16
	histories := make([][]float64, n)
	want := make([]float64, n)
	for i := range histories {
		h := make([]float64, 2+i%3) // lengths 2, 3, 4 interleaved
		for j := range h {
			h[j] = 0.4 + 0.01*float64(i+j)
		}
		histories[i] = h
		want[i], err = b.Forecast(h)
		if err != nil {
			t.Fatal(err)
		}
	}

	got := make([]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = srv.Forecast(context.Background(), "LSTM", histories[i])
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		sameForecast(t, fmt.Sprintf("request %d", i), got[i], want[i])
	}
}

// TestServerRejectsBadRequests covers the submit-time validation that keeps
// one bad request from poisoning a batch.
func TestServerRejectsBadRequests(t *testing.T) {
	srv := newTestServer(t)
	ctx := context.Background()

	if _, err := srv.Classify(ctx, "CifarNet", make([]float32, 7)); !errors.Is(err, tango.ErrShape) {
		t.Fatalf("wrong-length image error = %v, want wrapped ErrShape", err)
	}
	if _, err := srv.Forecast(ctx, "LSTM", nil); !errors.Is(err, tango.ErrShape) {
		t.Fatalf("empty history error = %v, want wrapped ErrShape", err)
	}
	if _, err := srv.Classify(ctx, "LSTM", make([]float32, 7)); !errors.Is(err, tango.ErrShape) {
		t.Fatalf("classify-on-RNN error = %v, want wrapped ErrShape", err)
	}
	if _, err := srv.Classify(ctx, "AlexNet", make([]float32, 7)); !errors.Is(err, tango.ErrNotServed) {
		t.Fatalf("unserved benchmark error = %v, want wrapped ErrNotServed", err)
	}
}

// TestServerClosedRejects checks requests after Close fail with
// ErrServerClosed and that Close is idempotent.
func TestServerClosedRejects(t *testing.T) {
	srv, err := tango.NewServer([]string{"LSTM"}, tango.ServerConfig{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Forecast(context.Background(), "LSTM", []float64{0.5, 0.6}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close()
	if _, err := srv.Forecast(context.Background(), "LSTM", []float64{0.5, 0.6}); !errors.Is(err, tango.ErrServerClosed) {
		t.Fatalf("post-close error = %v, want ErrServerClosed", err)
	}
	if st := srv.Stats(); st.Benchmarks["LSTM"].RejectedClosed != 1 {
		t.Fatalf("RejectedClosed = %d, want 1", st.Benchmarks["LSTM"].RejectedClosed)
	}
}
