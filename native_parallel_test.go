package tango_test

import (
	"testing"

	"tango"
)

// TestClassifyParallelDeterminism verifies that native inference through the
// public API is bit-identical for any compute-engine worker count, and that
// repeated pooled-scratch runs stay deterministic.
func TestClassifyParallelDeterminism(t *testing.T) {
	for _, name := range []string{"CifarNet", "AlexNet"} {
		b, err := tango.LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		img, _, err := b.SampleImage(7)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := b.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 0} {
			par, err := b.Classify(img, tango.WithParallelism(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if par.Class != serial.Class {
				t.Fatalf("%s workers=%d: class %d, want %d", name, workers, par.Class, serial.Class)
			}
			for i := range serial.Probabilities {
				if par.Probabilities[i] != serial.Probabilities[i] {
					t.Fatalf("%s workers=%d: probability %d = %g, want %g (bit-identical)",
						name, workers, i, par.Probabilities[i], serial.Probabilities[i])
				}
			}
		}
		// Pooled scratch reuse: rerunning must reproduce the same output.
		again, err := b.Classify(img)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Probabilities {
			if again.Probabilities[i] != serial.Probabilities[i] {
				t.Fatalf("%s rerun: probability %d changed", name, i)
			}
		}
	}
}

// TestForecastParallelDeterminism is the RNN counterpart of the parallel
// determinism check.
func TestForecastParallelDeterminism(t *testing.T) {
	for _, name := range tango.RNNBenchmarks() {
		b, err := tango.LoadBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := b.SampleHistory(7)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := b.Forecast(hist)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 0} {
			par, err := b.Forecast(hist, tango.WithParallelism(workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if par != serial {
				t.Fatalf("%s workers=%d: forecast %v, want %v (bit-identical)", name, workers, par, serial)
			}
		}
	}
}

// TestClassifyRejectsBadOption verifies that invalid inference options are
// reported rather than ignored.
func TestClassifyRejectsBadOption(t *testing.T) {
	b, err := tango.LoadBenchmark("CifarNet")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := b.SampleImage(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Classify(img, tango.WithScheduler("bogus")); err == nil {
		t.Fatal("invalid option must surface an error")
	}
}
