// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (BenchmarkTable1Models .. BenchmarkFig16AlexNetScheduler),
// plus native-inference and kernel-level micro-benchmarks and ablations of
// the simulator's sampling levels.
//
// The experiment benchmarks share one cached session, so the full simulation
// matrix (every network under every cache, scheduler and device
// configuration) is executed once per `go test -bench` invocation; repeated
// iterations re-render the tables from the cached runs.  Run
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-versus-measured comparison of every
// experiment.
package tango_test

import (
	"fmt"
	"sync"
	"testing"

	"tango"
	"tango/internal/gpusim"
	"tango/internal/kernel"
	"tango/internal/networks"
)

// sharedSession caches simulation results across all experiment benchmarks.
var (
	sessionOnce   sync.Once
	sharedSession *tango.ExperimentSession
)

func experimentSession() *tango.ExperimentSession {
	sessionOnce.Do(func() {
		sharedSession = tango.NewExperimentSession()
	})
	return sharedSession
}

// benchmarkExperiment drives one experiment and reports its table size.
func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	s := experimentSession()
	var rows int
	for i := 0; i < b.N; i++ {
		tab, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(tab.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// Tables I-IV.

func BenchmarkTable1Models(b *testing.B)       { benchmarkExperiment(b, "table1") }
func BenchmarkTable2Devices(b *testing.B)      { benchmarkExperiment(b, "table2") }
func BenchmarkTable3KernelConfig(b *testing.B) { benchmarkExperiment(b, "table3") }
func BenchmarkTable4FPGA(b *testing.B)         { benchmarkExperiment(b, "table4") }

// Figures 1-16.

func BenchmarkFig1LayerTimeBreakdown(b *testing.B)    { benchmarkExperiment(b, "fig1") }
func BenchmarkFig2CacheSensitivity(b *testing.B)      { benchmarkExperiment(b, "fig2") }
func BenchmarkFig3PeakPower(b *testing.B)             { benchmarkExperiment(b, "fig3") }
func BenchmarkFig4LayerPower(b *testing.B)            { benchmarkExperiment(b, "fig4") }
func BenchmarkFig5ComponentPower(b *testing.B)        { benchmarkExperiment(b, "fig5") }
func BenchmarkFig6EdgeEnergy(b *testing.B)            { benchmarkExperiment(b, "fig6") }
func BenchmarkFig7StallBreakdown(b *testing.B)        { benchmarkExperiment(b, "fig7") }
func BenchmarkFig8OpBreakdown(b *testing.B)           { benchmarkExperiment(b, "fig8") }
func BenchmarkFig9TopOps(b *testing.B)                { benchmarkExperiment(b, "fig9") }
func BenchmarkFig10DataTypes(b *testing.B)            { benchmarkExperiment(b, "fig10") }
func BenchmarkFig11MemoryFootprint(b *testing.B)      { benchmarkExperiment(b, "fig11") }
func BenchmarkFig12RegisterUsage(b *testing.B)        { benchmarkExperiment(b, "fig12") }
func BenchmarkFig13L2Misses(b *testing.B)             { benchmarkExperiment(b, "fig13") }
func BenchmarkFig14L2MissRatio(b *testing.B)          { benchmarkExperiment(b, "fig14") }
func BenchmarkFig15SchedulerSensitivity(b *testing.B) { benchmarkExperiment(b, "fig15") }
func BenchmarkFig16AlexNetScheduler(b *testing.B)     { benchmarkExperiment(b, "fig16") }

// Native inference benchmarks: the benchmark suite's workloads executed with
// the pure-Go layer kernels (the CUDA-equivalent math path).

func benchmarkNativeCNN(b *testing.B, name string) {
	b.Helper()
	bm, err := tango.LoadBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	img, _, err := bm.SampleImage(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Classify(img); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkNativeRNN(b *testing.B, name string) {
	b.Helper()
	bm, err := tango.LoadBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	hist, err := bm.SampleHistory(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Forecast(hist); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferenceCifarNet(b *testing.B) { benchmarkNativeCNN(b, "CifarNet") }
func BenchmarkInferenceGRU(b *testing.B)      { benchmarkNativeRNN(b, "GRU") }
func BenchmarkInferenceLSTM(b *testing.B)     { benchmarkNativeRNN(b, "LSTM") }

// Simulation micro-benchmarks per device, exercising the simulator itself.

func benchmarkSimulate(b *testing.B, name string, opts ...tango.SimOption) {
	b.Helper()
	bm, err := tango.LoadBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := bm.Simulate(opts...)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

func BenchmarkSimulateCifarNetGP102(b *testing.B) {
	benchmarkSimulate(b, "CifarNet", tango.WithFastSampling())
}

func BenchmarkSimulateCifarNetTX1(b *testing.B) {
	benchmarkSimulate(b, "CifarNet", tango.WithDevice("TX1"), tango.WithFastSampling())
}

func BenchmarkSimulateLSTMExhaustive(b *testing.B) {
	benchmarkSimulate(b, "LSTM", tango.WithExhaustiveSimulation())
}

// Ablation: the effect of the simulator's sampling level on AlexNet's
// simulated cycle estimate (the DESIGN.md sampling ablation).

func BenchmarkAblationSamplingFast(b *testing.B) {
	benchmarkSimulate(b, "AlexNet", tango.WithFastSampling())
}

func BenchmarkAblationSamplingDefault(b *testing.B) {
	benchmarkSimulate(b, "AlexNet")
}

// Ablation: warp scheduler choice on AlexNet (Figure 15's headline case).

func BenchmarkAblationSchedulerGTO(b *testing.B) {
	benchmarkSimulate(b, "AlexNet", tango.WithFastSampling(), tango.WithScheduler("gto"))
}

func BenchmarkAblationSchedulerLRR(b *testing.B) {
	benchmarkSimulate(b, "AlexNet", tango.WithFastSampling(), tango.WithScheduler("lrr"))
}

func BenchmarkAblationSchedulerTLV(b *testing.B) {
	benchmarkSimulate(b, "AlexNet", tango.WithFastSampling(), tango.WithScheduler("tlv"))
}

// Ablation: L1D sizing on AlexNet (Figure 2's headline case).

func BenchmarkAblationNoL1(b *testing.B) {
	benchmarkSimulate(b, "AlexNet", tango.WithFastSampling(), tango.WithL1SizeKB(0))
}

func BenchmarkAblationL1Default(b *testing.B) {
	benchmarkSimulate(b, "AlexNet", tango.WithFastSampling(), tango.WithL1SizeKB(64))
}

func BenchmarkAblationL1Quadruple(b *testing.B) {
	benchmarkSimulate(b, "AlexNet", tango.WithFastSampling(), tango.WithL1SizeKB(256))
}

// Cycle-loop micro-benchmarks: a single CNN kernel and a single RNN kernel
// simulated directly through gpusim, isolating the simulator hot path from
// kernel generation and report rendering.

func loadKernel(b *testing.B, network string, pick func(*kernel.Kernel) bool) *kernel.Kernel {
	b.Helper()
	n, err := networks.New(network)
	if err != nil {
		b.Fatal(err)
	}
	ks, err := kernel.Generate(n)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range ks {
		if pick(k) {
			return k
		}
	}
	b.Fatalf("%s: no kernel matched", network)
	return nil
}

func benchmarkKernelSim(b *testing.B, k *kernel.Kernel) {
	b.Helper()
	sim, err := gpusim.New(gpusim.DefaultConfig().WithSampling(gpusim.FastSampling()))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		st, err := sim.RunKernel(k)
		if err != nil {
			b.Fatal(err)
		}
		cycles = st.SimCycles
	}
	b.ReportMetric(float64(cycles), "sim-cycles")
}

// BenchmarkSimulateKernelCNN drives the cycle loop with AlexNet's first
// convolution, the archetypal compute-heavy CNN kernel.
func BenchmarkSimulateKernelCNN(b *testing.B) {
	benchmarkKernelSim(b, loadKernel(b, "AlexNet", func(k *kernel.Kernel) bool {
		return k.Class == networks.ClassConv
	}))
}

// BenchmarkSimulateKernelRNN drives the cycle loop with a GRU cell kernel,
// the suite's memory-dependency-bound RNN workload.
func BenchmarkSimulateKernelRNN(b *testing.B) {
	benchmarkKernelSim(b, loadKernel(b, "GRU", func(k *kernel.Kernel) bool {
		return k.Class == networks.ClassRNN
	}))
}

// Full fast-sampling experiment runs: every table and figure over all seven
// networks, serially and with the parallel execution engine.  Each iteration
// uses a fresh session with an isolated cache so the entire simulation
// matrix is recomputed — these measure the pipeline end to end.

func benchmarkRunAll(b *testing.B, opts ...tango.ExperimentOption) {
	b.Helper()
	opts = append([]tango.ExperimentOption{
		tango.WithFastExperimentSampling(), tango.WithIsolatedCache()}, opts...)
	var tables int
	for i := 0; i < b.N; i++ {
		out, err := tango.NewExperimentSession(opts...).RunAll()
		if err != nil {
			b.Fatal(err)
		}
		tables = len(out)
	}
	b.ReportMetric(float64(tables), "tables")
}

func BenchmarkRunAllFastSampling(b *testing.B) { benchmarkRunAll(b) }

func BenchmarkRunAllFastSamplingParallel(b *testing.B) {
	benchmarkRunAll(b, tango.WithExperimentParallelism(0))
}

// BenchmarkRunAllFigures measures the trace-once/derive-many steady state:
// each iteration is a fresh session over the process-wide shared store, so
// after the first iteration every figure renders as a pure projection of
// cached runs — the repeated-report path tango-report users hit.
func BenchmarkRunAllFigures(b *testing.B) {
	var tables int
	for i := 0; i < b.N; i++ {
		out, err := tango.NewExperimentSession(tango.WithFastExperimentSampling()).RunAll()
		if err != nil {
			b.Fatal(err)
		}
		tables = len(out)
	}
	b.ReportMetric(float64(tables), "tables")
}

// Example of the public API used as documentation.
func ExampleBenchmarks() {
	fmt.Println(len(tango.Benchmarks()))
	// Output: 7
}
