package tango

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"tango/internal/par"
	"tango/internal/resilience"
	"tango/internal/target"
)

// coldSweepStore routes Sweep at one fresh store for the test's duration
// and returns it, so cache state can be asserted without interference from
// the process-wide shared store.
func coldSweepStore(t *testing.T) *target.Store {
	t.Helper()
	st := target.NewStore()
	prev := sweepStore
	sweepStore = func() *target.Store { return st }
	t.Cleanup(func() { sweepStore = prev })
	return st
}

// TestSweepContextPreCanceled checks a canceled context aborts the sweep
// before any cell is computed: prompt return with ctx's error, nothing
// cached, no goroutines left behind.
func TestSweepContextPreCanceled(t *testing.T) {
	defer par.CheckLeaks()(t)
	st := coldSweepStore(t)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ds, err := SweepContext(ctx, SweepConfig{
		Networks:     []string{"GRU", "CifarNet"},
		FastSampling: true,
		Parallelism:  4,
	})
	if ds != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepContext(canceled) = %v, %v; want nil, context.Canceled", ds, err)
	}
	if stats := st.Stats(); stats.Traces != 0 || stats.Runs != 0 {
		t.Fatalf("canceled sweep touched the store: %+v", stats)
	}
}

// TestSweepContextCancelMidSweep checks cancellation mid-sweep returns
// promptly with ctx's error (never a partial dataset) and leaks no worker
// goroutines.
func TestSweepContextCancelMidSweep(t *testing.T) {
	defer par.CheckLeaks()(t)
	coldSweepStore(t)

	// Stall every cell long enough that cancellation lands mid-flight.
	if err := resilience.Enable("target.run=latency:1:300ms", 1); err != nil {
		t.Fatal(err)
	}
	defer resilience.Disable()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	ds, err := SweepContext(ctx, SweepConfig{
		Networks:     []string{"GRU", "CifarNet"},
		Targets:      []string{"gp102", "tx1", "pynq"},
		FastSampling: true,
		Parallelism:  2,
	})
	if ds != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("SweepContext(mid-cancel) = %v, %v; want nil, context.Canceled", ds, err)
	}
	// Prompt return: in-flight cells finish their stall (~300ms), but the
	// remaining ~10 cells must not be dispatched serially afterward.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to take effect", elapsed)
	}
}

// TestSweepPartialDataset checks a sweep with one permanently failing cell
// still yields a dataset covering every other cell: the failing cell's
// record carries the error in-band, every other record is complete and
// the error column round-trips through the CSV rendering.
func TestSweepPartialDataset(t *testing.T) {
	coldSweepStore(t)

	// Permanently fail exactly the CifarNet cells via the labeled store
	// injection point (labels are "network/target/variant").
	if err := resilience.Enable("target.run=error:1:only=CifarNet/", 1); err != nil {
		t.Fatal(err)
	}
	defer resilience.Disable()

	cfg := SweepConfig{
		Networks:     []string{"GRU", "CifarNet"},
		Targets:      []string{"gp102", "pynq"},
		FastSampling: true,
		CellRetries:  1,
		Partial:      true,
	}
	ds, err := SweepContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 4 {
		t.Fatalf("partial sweep has %d records, want 4", ds.Len())
	}
	var failed, ok int
	for _, r := range ds.Records {
		switch {
		case r.Failed():
			failed++
			if r.Network != "CifarNet" {
				t.Errorf("unexpected failed cell: %+v", r)
			}
			if !strings.Contains(r.Err, resilience.ErrInjected.Error()) {
				t.Errorf("error cell does not carry the injected fault: %q", r.Err)
			}
			if r.Seconds != 0 || r.Cycles != 0 {
				t.Errorf("failed cell has nonzero statistics: %+v", r)
			}
		default:
			ok++
			if r.Network != "GRU" || r.Seconds <= 0 {
				t.Errorf("surviving cell looks wrong: %+v", r)
			}
		}
	}
	if failed != 2 || ok != 2 {
		t.Fatalf("partial sweep split %d failed / %d ok, want 2 / 2", failed, ok)
	}

	// The error column renders last, so existing column consumers see an
	// unchanged prefix and the error text stays greppable.
	csv := ds.CSV()
	if !strings.HasPrefix(csv, "Network,") || !strings.Contains(csv, "Error") {
		t.Fatalf("CSV header lost the error column: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if !strings.Contains(csv, "injected fault") {
		t.Fatalf("CSV lost the per-cell error text:\n%s", csv)
	}

	// Without Partial, the same failure aborts the whole sweep.
	cfg.Partial = false
	if _, err := SweepContext(context.Background(), cfg); !errors.Is(err, ErrInjected) {
		t.Fatalf("strict sweep error = %v, want wrapped ErrInjected", err)
	}
}

// TestSweepCellTimeoutAndRetry checks a cell that stalls past CellTimeout
// fails with DeadlineExceeded, and that CellRetries turns a transient
// failure into a successful cell.
func TestSweepCellTimeoutAndRetry(t *testing.T) {
	coldSweepStore(t)

	// A 400ms stall against a 100ms budget: the first attempt times out
	// and its abandoned computation keeps running; retries join the
	// singleflight entry and succeed once it completes and caches.
	if err := resilience.Enable("target.run=latency:1:400ms", 1); err != nil {
		t.Fatal(err)
	}
	defer resilience.Disable()

	cfg := SweepConfig{
		Networks:     []string{"GRU"},
		Targets:      []string{"pynq"},
		FastSampling: true,
		CellTimeout:  100 * time.Millisecond,
	}
	// No retries: the stalled cell times out and the strict sweep fails.
	_, err := SweepContext(context.Background(), cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout sweep error = %v, want wrapped DeadlineExceeded", err)
	}

	// With retries, the retry waits out the backoff while the abandoned
	// first attempt finishes and caches; a later attempt then hits the
	// cache within its own 100ms budget.
	cfg.CellRetries = 5
	ds, err := SweepContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 1 || ds.Records[0].Failed() || ds.Records[0].Seconds <= 0 {
		t.Fatalf("retried sweep = %+v, want one complete record", ds.Records)
	}
}
