package tango

import (
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"tango/internal/serve"
)

// This file renders a ServerStats snapshot in the Prometheus text exposition
// format (version 0.0.4), hand-rolled over the stdlib so GET /metrics is
// scrapeable with zero dependencies.  The snapshot renderer is a pure
// function of its input — same stats in, same bytes out, with sorted
// benchmark rows and a fixed family order — so the format is golden-testable;
// live process series (goroutines, allocator stats) are appended separately
// and excluded from the golden.

// prometheusContentType is the exposition-format content type served by
// GET /metrics.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter accumulates exposition text one family at a time.
type promWriter struct {
	b strings.Builder
}

// family emits the # HELP / # TYPE header of a metric family.
func (w *promWriter) family(name, typ, help string) {
	w.b.WriteString("# HELP ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(help)
	w.b.WriteString("\n# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

// sample emits one series line: name{labels} value.  Labels are
// key(,value) pairs in the given order; values are escaped per the format
// (backslash, double quote, newline).
func (w *promWriter) sample(name string, labels []string, value string) {
	w.b.WriteString(name)
	if len(labels) > 0 {
		w.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				w.b.WriteByte(',')
			}
			w.b.WriteString(labels[i])
			w.b.WriteString(`="`)
			w.b.WriteString(escapeLabel(labels[i+1]))
			w.b.WriteByte('"')
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(value)
	w.b.WriteByte('\n')
}

// escapeLabel escapes a label value per the text format: backslash, double
// quote and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func promUint(v uint64) string { return strconv.FormatUint(v, 10) }
func promInt(v int64) string   { return strconv.FormatInt(v, 10) }
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promSeconds renders a duration as seconds, the unit every Prometheus time
// series uses.
func promSeconds(d time.Duration) string { return promFloat(d.Seconds()) }

// perBenchCounter emits one counter family with a benchmark label, one row
// per served benchmark in sorted order.
func perBenchCounter(w *promWriter, names []string, st ServerStats, name, help string, get func(BenchmarkServeStats) uint64) {
	w.family(name, "counter", help)
	for _, n := range names {
		w.sample(name, []string{"benchmark", n}, promUint(get(st.Benchmarks[n])))
	}
}

// perBenchGauge emits one gauge family with a benchmark label.
func perBenchGauge(w *promWriter, names []string, st ServerStats, name, help string, get func(BenchmarkServeStats) string) {
	w.family(name, "gauge", help)
	for _, n := range names {
		w.sample(name, []string{"benchmark", n}, get(st.Benchmarks[n]))
	}
}

// appendServerMetrics renders the snapshot half of GET /metrics.  It is a
// pure function of the snapshot: benchmark rows sort by name, families come
// in a fixed order, and no clock or process state is read.
func appendServerMetrics(w *promWriter, st ServerStats) {
	names := make([]string, 0, len(st.Benchmarks))
	for n := range st.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)

	w.family("tango_server_info", "gauge", "Serving configuration; value is always 1.")
	w.sample("tango_server_info", []string{"numerics", st.NumericsTier}, "1")
	if st.TargetP99Micros > 0 {
		w.family("tango_slo_target_seconds", "gauge", "Per-request p99 latency SLO driving adaptive batching.")
		w.sample("tango_slo_target_seconds", nil, promFloat(st.TargetP99Micros/1e6))
	}
	if st.ModelBudgetBytes > 0 {
		w.family("tango_model_budget_bytes", "gauge", "Resident-engine byte budget; exceeding it evicts idle models LRU-first.")
		w.sample("tango_model_budget_bytes", nil, promInt(st.ModelBudgetBytes))
	}
	w.family("tango_resident_models", "gauge", "Served models whose engine is currently loaded.")
	w.sample("tango_resident_models", nil, promInt(int64(st.ResidentModels)))
	w.family("tango_resident_bytes", "gauge", "Total resident engine bytes (weights + packed panels + scratch high-water).")
	w.sample("tango_resident_bytes", nil, promInt(st.ResidentBytes))

	perBenchCounter(w, names, st, "tango_requests_total",
		"Requests accepted into a benchmark's queue.",
		func(b BenchmarkServeStats) uint64 { return b.Submitted })
	perBenchCounter(w, names, st, "tango_requests_completed_total",
		"Requests that received a result.",
		func(b BenchmarkServeStats) uint64 { return b.Completed })
	perBenchCounter(w, names, st, "tango_requests_canceled_total",
		"Requests whose context expired while queued.",
		func(b BenchmarkServeStats) uint64 { return b.Canceled })

	w.family("tango_requests_rejected_total", "counter", "Requests rejected without queuing, by reason.")
	for _, n := range names {
		b := st.Benchmarks[n]
		w.sample("tango_requests_rejected_total", []string{"benchmark", n, "reason", "queue_full"}, promUint(b.RejectedQueueFull))
		w.sample("tango_requests_rejected_total", []string{"benchmark", n, "reason", "closed"}, promUint(b.RejectedClosed))
	}
	w.family("tango_requests_shed_total", "counter", "Requests shed by admission control, by reason.")
	for _, n := range names {
		b := st.Benchmarks[n]
		w.sample("tango_requests_shed_total", []string{"benchmark", n, "reason", "load"}, promUint(b.ShedLoad))
		w.sample("tango_requests_shed_total", []string{"benchmark", n, "reason", "breaker"}, promUint(b.ShedBreaker))
	}

	perBenchCounter(w, names, st, "tango_batches_total",
		"Batches executed by the compute engine.",
		func(b BenchmarkServeStats) uint64 { return b.Batches })
	perBenchCounter(w, names, st, "tango_batch_errors_total",
		"Batches whose full-batch run failed (before bisection fallback).",
		func(b BenchmarkServeStats) uint64 { return b.BatchErrors })
	perBenchCounter(w, names, st, "tango_batch_bisections_total",
		"Segment splits performed isolating failed batches.",
		func(b BenchmarkServeStats) uint64 { return b.Bisections })
	perBenchCounter(w, names, st, "tango_requests_isolated_total",
		"Requests that still failed alone after bisection.",
		func(b BenchmarkServeStats) uint64 { return b.Isolated })

	perBenchGauge(w, names, st, "tango_in_flight_requests",
		"Admitted requests not yet resolved.",
		func(b BenchmarkServeStats) string { return promInt(b.InFlight) })
	perBenchGauge(w, names, st, "tango_queue_depth",
		"Requests currently waiting in the bounded queue.",
		func(b BenchmarkServeStats) string { return promInt(int64(b.QueueLen)) })
	perBenchGauge(w, names, st, "tango_queue_capacity",
		"Bounded queue capacity.",
		func(b BenchmarkServeStats) string { return promInt(int64(b.QueueCap)) })
	perBenchGauge(w, names, st, "tango_breaker_state",
		"Circuit breaker state: 0 closed, 1 half-open, 2 open.",
		func(b BenchmarkServeStats) string { return promInt(breakerStateValue(b.BreakerState)) })
	perBenchGauge(w, names, st, "tango_batch_window_seconds",
		"Batch window in effect (fixed max-delay, or the adaptive controller's live window).",
		func(b BenchmarkServeStats) string { return promFloat(b.BatchWindowMicros / 1e6) })

	// Batch-size histogram: BatchSizeHist[i] counts batches of size i+1;
	// exposition buckets are cumulative by size.
	w.family("tango_batch_size", "histogram", "Executed batch sizes.")
	for _, n := range names {
		b := st.Benchmarks[n]
		var cum, sum uint64
		for i, c := range b.BatchSizeHist {
			cum += c
			sum += uint64(i+1) * c
			w.sample("tango_batch_size_bucket", []string{"benchmark", n, "le", promUint(uint64(i + 1))}, promUint(cum))
		}
		w.sample("tango_batch_size_bucket", []string{"benchmark", n, "le", "+Inf"}, promUint(b.Batches))
		w.sample("tango_batch_size_sum", []string{"benchmark", n}, promUint(sum))
		w.sample("tango_batch_size_count", []string{"benchmark", n}, promUint(b.Batches))
	}

	// Request-latency histogram: cumulative-since-load bucket counts with
	// the shared serve.LatencyBuckets bounds; p99 within any scrape window
	// is recoverable from bucket deltas.
	w.family("tango_request_latency_seconds", "histogram", "End-to-end request latency (queue wait + batch compute).")
	for _, n := range names {
		b := st.Benchmarks[n]
		var cum uint64
		for i, ub := range serve.LatencyBuckets {
			if i < len(b.LatencyHist) {
				cum += b.LatencyHist[i]
			}
			w.sample("tango_request_latency_seconds_bucket", []string{"benchmark", n, "le", promSeconds(ub)}, promUint(cum))
		}
		if len(b.LatencyHist) > len(serve.LatencyBuckets) {
			cum += b.LatencyHist[len(serve.LatencyBuckets)]
		}
		w.sample("tango_request_latency_seconds_bucket", []string{"benchmark", n, "le", "+Inf"}, promUint(cum))
		w.sample("tango_request_latency_seconds_sum", []string{"benchmark", n}, promFloat(b.LatencySumMicros/1e6))
		w.sample("tango_request_latency_seconds_count", []string{"benchmark", n}, promUint(cum))
	}

	perBenchGauge(w, names, st, "tango_model_resident",
		"Whether the model's engine is loaded (1) or cold (0).",
		func(b BenchmarkServeStats) string {
			if b.Resident {
				return "1"
			}
			return "0"
		})
	perBenchGauge(w, names, st, "tango_model_resident_bytes",
		"Resident engine bytes (weights + packed panels + scratch high-water).",
		func(b BenchmarkServeStats) string { return promInt(b.ResidentBytes) })
	perBenchGauge(w, names, st, "tango_model_weight_bytes",
		"Synthesized parameter bytes of the loaded engine.",
		func(b BenchmarkServeStats) string { return promInt(b.WeightBytes) })
	perBenchGauge(w, names, st, "tango_model_packed_bytes",
		"Fast-tier packed weight-panel bytes built so far.",
		func(b BenchmarkServeStats) string { return promInt(b.PackedBytes) })
	perBenchGauge(w, names, st, "tango_model_scratch_bytes",
		"High-water bytes of one pooled compute scratch (arena + staging).",
		func(b BenchmarkServeStats) string { return promInt(b.ScratchBytes) })
	perBenchCounter(w, names, st, "tango_model_loads_total",
		"Engine load cycles (initial load plus reloads after eviction).",
		func(b BenchmarkServeStats) uint64 { return b.Loads })
	perBenchCounter(w, names, st, "tango_model_evictions_total",
		"Engine evictions under the model byte budget.",
		func(b BenchmarkServeStats) uint64 { return b.Evictions })
}

// breakerStateValue maps a breaker state name to its gauge value.
func breakerStateValue(state string) int64 {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	default:
		return 0
	}
}

// appendRuntimeMetrics renders the live process series: excluded from the
// golden test because they change every scrape.
func appendRuntimeMetrics(w *promWriter) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.family("go_goroutines", "gauge", "Live goroutines.")
	w.sample("go_goroutines", nil, promInt(int64(runtime.NumGoroutine())))
	w.family("go_memstats_heap_alloc_bytes", "gauge", "Heap bytes currently allocated.")
	w.sample("go_memstats_heap_alloc_bytes", nil, promUint(ms.HeapAlloc))
	w.family("go_memstats_alloc_bytes_total", "counter", "Cumulative bytes allocated on the heap.")
	w.sample("go_memstats_alloc_bytes_total", nil, promUint(ms.TotalAlloc))
	w.family("go_memstats_mallocs_total", "counter", "Cumulative heap allocations.")
	w.sample("go_memstats_mallocs_total", nil, promUint(ms.Mallocs))
	w.family("go_memstats_gc_cycles_total", "counter", "Completed GC cycles.")
	w.sample("go_memstats_gc_cycles_total", nil, promUint(uint64(ms.NumGC)))
}

// PrometheusText renders the snapshot as Prometheus text exposition (format
// 0.0.4).  It is deterministic: benchmark rows sort by name and families
// come in a fixed order, so scrape diffs reflect counter movement only.
func (st ServerStats) PrometheusText() string {
	var w promWriter
	appendServerMetrics(&w, st)
	return w.b.String()
}

// metricsText is the full GET /metrics body: the deterministic snapshot
// series followed by live process series.
func (s *Server) metricsText() string {
	var w promWriter
	appendServerMetrics(&w, s.Stats())
	appendRuntimeMetrics(&w)
	return w.b.String()
}
