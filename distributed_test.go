package tango

import (
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"tango/internal/coord"
	"tango/internal/target"
)

// TestSweepWarmDiskByteIdentical is the persistent-cache acceptance test:
// a cold sweep against a cache directory populates it, and an identical
// sweep over a fresh store (the cross-process case — SweepConfig.CacheDir
// always gets a private store with an empty memory tier) reproduces the
// table and CSV byte-for-byte while executing zero simulator runs.
func TestSweepWarmDiskByteIdentical(t *testing.T) {
	dir := t.TempDir()
	cfg := SweepConfig{
		Networks:     []string{"GRU"},
		Targets:      []string{"gp102", "pynq"},
		FastSampling: true,
		CacheDir:     dir,
	}

	var cold CacheStats
	cfg.CacheStats = &cold
	ds1, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Computes != int64(len(ds1.Records)) {
		t.Fatalf("cold sweep computed %d cells for %d records", cold.Computes, len(ds1.Records))
	}
	if cold.DiskWrites != cold.Computes {
		t.Fatalf("cold sweep wrote %d records for %d computes", cold.DiskWrites, cold.Computes)
	}

	var warm CacheStats
	cfg.CacheStats = &warm
	ds2, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Computes != 0 {
		t.Fatalf("warm sweep executed %d simulator runs, want 0", warm.Computes)
	}
	if warm.DiskHits != int64(len(ds2.Records)) {
		t.Fatalf("warm sweep hit disk %d times for %d records", warm.DiskHits, len(ds2.Records))
	}
	if csv1, csv2 := ds1.CSV(), ds2.CSV(); csv1 != csv2 {
		t.Fatalf("warm CSV differs from cold CSV:\n%s\nvs\n%s", csv1, csv2)
	}
	tbl1 := ds1.Table("sweep", "t").String()
	tbl2 := ds2.Table("sweep", "t").String()
	if tbl1 != tbl2 {
		t.Fatalf("warm table differs from cold table:\n%s\nvs\n%s", tbl1, tbl2)
	}
}

// startWorkers launches n coord workers, each with its own isolated store
// (so the cells demonstrably run worker-side), and returns their URLs.
func startWorkers(t *testing.T, n int) ([]string, []*coord.Worker) {
	t.Helper()
	addrs := make([]string, n)
	ws := make([]*coord.Worker, n)
	for i := 0; i < n; i++ {
		w := coord.NewWorker(coord.WorkerConfig{
			Store:       target.NewStore(),
			Parallelism: 2,
		})
		srv := httptest.NewServer(w)
		t.Cleanup(func() { srv.Close(); w.Close() })
		addrs[i] = srv.URL
		ws[i] = w
	}
	return addrs, ws
}

// TestSweepDistributedByteIdentical is the sharding acceptance test: a
// 2-worker coordinator sweep merges to exactly the dataset a
// single-process sweep of the same cells produces.
func TestSweepDistributedByteIdentical(t *testing.T) {
	cfg := SweepConfig{
		Networks:     []string{"GRU", "CifarNet"},
		Targets:      []string{"gp102"},
		FastSampling: true,
	}
	local, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	addrs, workers := startWorkers(t, 2)
	dcfg := cfg
	dcfg.Workers = addrs
	dcfg.CacheDir = t.TempDir() // private cold store: every cell must travel
	var stats CacheStats
	dcfg.CacheStats = &stats
	dist, err := Sweep(dcfg)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := dist.CSV(), local.CSV(); got != want {
		t.Fatalf("distributed CSV differs from single-process CSV:\n%s\nvs\n%s", got, want)
	}
	if !reflect.DeepEqual(dist.Records, local.Records) {
		t.Fatalf("distributed records differ:\n%+v\nvs\n%+v", dist.Records, local.Records)
	}
	if stats.Computes != 0 {
		t.Fatalf("coordinator computed %d cells locally, want 0 (healthy workers)", stats.Computes)
	}
	var remote int64
	for _, w := range workers {
		remote += w.Store().Stats().Computes
	}
	if remote != int64(len(dist.Records)) {
		t.Fatalf("workers computed %d cells for %d records", remote, len(dist.Records))
	}
	for i, w := range workers {
		if w.Store().Stats().Computes == 0 {
			t.Fatalf("worker %d got no cells; sharding is not spreading work", i)
		}
	}
}

// TestSweepDistributedFallsBackToLocal: a sweep pointed at a dead worker
// still produces the full, correct dataset by computing the failed cells
// locally.
func TestSweepDistributedFallsBackToLocal(t *testing.T) {
	cfg := SweepConfig{
		Networks:     []string{"GRU"},
		Targets:      []string{"gp102"},
		FastSampling: true,
	}
	local, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}

	dcfg := cfg
	dcfg.Workers = []string{"127.0.0.1:1"} // nothing listens here
	dcfg.CacheDir = t.TempDir()
	var stats CacheStats
	dcfg.CacheStats = &stats
	dist, err := Sweep(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := dist.CSV(), local.CSV(); got != want {
		t.Fatalf("fallback CSV differs from single-process CSV:\n%s\nvs\n%s", got, want)
	}
	if stats.Computes != int64(len(dist.Records)) {
		t.Fatalf("dead-worker sweep computed %d cells locally for %d records", stats.Computes, len(dist.Records))
	}
	for _, r := range dist.Records {
		if r.Err != "" || !strings.EqualFold(r.Network, "GRU") {
			t.Fatalf("fallback record carries an error or wrong identity: %+v", r)
		}
	}
}
