// Fast-numerics tier benchmarks: single-sample and batched AlexNet
// classification under WithFastMath / WithInt8, tracked by the CI
// bench-regression job against the committed baseline (BENCH_pr7.json).
package tango_test

import (
	"testing"
	"time"

	"tango"
)

// benchmarkClassifyOpts measures single-sample classification under the
// given inference options and reports throughput in images/sec.
func benchmarkClassifyOpts(b *testing.B, name string, opts ...tango.SimOption) {
	bm, err := tango.LoadBenchmark(name)
	if err != nil {
		b.Fatal(err)
	}
	img, _, err := bm.SampleImage(1)
	if err != nil {
		b.Fatal(err)
	}
	// Warm outside the timed region: the first fast-tier run packs the
	// weight panels (a one-time per-plan cost).
	if _, err := bm.Classify(img, opts...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.Classify(img, opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

func BenchmarkClassifyAlexNetFastMath(b *testing.B) {
	benchmarkClassifyOpts(b, "AlexNet", tango.WithFastMath())
}

func BenchmarkClassifyAlexNetInt8(b *testing.B) {
	benchmarkClassifyOpts(b, "AlexNet", tango.WithInt8())
}

// alexNetBatch8 loads AlexNet and synthesizes the 8-image batch the
// batched benchmarks and the speedup guard share.
func alexNetBatch8(tb testing.TB) (*tango.Benchmark, [][]float32) {
	tb.Helper()
	bm, err := tango.LoadBenchmark("AlexNet")
	if err != nil {
		tb.Fatal(err)
	}
	images := make([][]float32, 8)
	for i := range images {
		img, _, err := bm.SampleImage(uint64(i + 1))
		if err != nil {
			tb.Fatal(err)
		}
		images[i] = img
	}
	return bm, images
}

// benchmarkClassifyBatch8 measures batched classification under the given
// inference options; the fused staging path makes this the fast tier's
// highest-throughput entry point.
func benchmarkClassifyBatch8(b *testing.B, opts ...tango.SimOption) {
	bm, images := alexNetBatch8(b)
	if _, err := bm.ClassifyBatch(images, opts...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bm.ClassifyBatch(images, opts...); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(images))*float64(b.N)/b.Elapsed().Seconds(), "images/sec")
}

// BenchmarkClassifyAlexNetBatch8FastMath is the fast-tier counterpart of
// BenchmarkClassifyAlexNetBatch8.
func BenchmarkClassifyAlexNetBatch8FastMath(b *testing.B) {
	benchmarkClassifyBatch8(b, tango.WithFastMath())
}

// BenchmarkClassifyAlexNetBatch8Int8 measures the fused batched int8 tier
// (per-image activation scales, per-panel quantization).
func BenchmarkClassifyAlexNetBatch8Int8(b *testing.B) {
	benchmarkClassifyBatch8(b, tango.WithInt8())
}

// TestFastMathBatchSpeedupAlexNet is the fused batched path's acceptance
// check: batch-8 AlexNet classification with WithFastMath must sustain at
// least 2x the throughput of the bit-exact reference batch path on the
// same machine.  Skipped under -short (it times full batched runs).
func TestFastMathBatchSpeedupAlexNet(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	bm, images := alexNetBatch8(t)
	timeRuns := func(opts ...tango.SimOption) time.Duration {
		// Warm once (plan resolution, weight packing, arena growth).
		if _, err := bm.ClassifyBatch(images, opts...); err != nil {
			t.Fatal(err)
		}
		const runs = 3
		best := time.Duration(1<<63 - 1)
		for i := 0; i < runs; i++ {
			start := time.Now()
			if _, err := bm.ClassifyBatch(images, opts...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	ref := timeRuns(tango.WithReferenceNumerics())
	fast := timeRuns(tango.WithFastMath())
	speedup := float64(ref) / float64(fast)
	t.Logf("AlexNet batch 8: reference %v, fastmath %v (%.2fx)", ref, fast, speedup)
	if speedup < 2 {
		t.Fatalf("batched fast-math speedup %.2fx below the required 2x (reference %v, fast %v)",
			speedup, ref, fast)
	}
}

// TestFastMathSpeedupAlexNet is the fast tier's headline acceptance check:
// single-sample AlexNet classification with WithFastMath must sustain at
// least 2x the images/sec of the bit-exact reference path on the same
// machine.  Skipped under -short (it times full AlexNet runs).
func TestFastMathSpeedupAlexNet(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in -short mode")
	}
	bm, err := tango.LoadBenchmark("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := bm.SampleImage(1)
	if err != nil {
		t.Fatal(err)
	}
	timeRuns := func(opts ...tango.SimOption) time.Duration {
		// Warm once (plan resolution, weight packing, arena growth).
		if _, err := bm.Classify(img, opts...); err != nil {
			t.Fatal(err)
		}
		const runs = 3
		best := time.Duration(1<<63 - 1)
		for i := 0; i < runs; i++ {
			start := time.Now()
			if _, err := bm.Classify(img, opts...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	ref := timeRuns(tango.WithReferenceNumerics())
	fast := timeRuns(tango.WithFastMath())
	speedup := float64(ref) / float64(fast)
	t.Logf("AlexNet: reference %v, fastmath %v (%.2fx)", ref, fast, speedup)
	if speedup < 2 {
		t.Fatalf("fast-math speedup %.2fx below the required 2x (reference %v, fast %v)",
			speedup, ref, fast)
	}
}
