package tango

import (
	"errors"

	"tango/internal/serve"
	"tango/internal/tensor"
)

// Sentinel errors of the public API, for use with errors.Is.
var (
	// ErrShape reports an input whose shape or length does not match what
	// the benchmark expects: wrong image length, empty batch, empty
	// history, ragged batch.  Every shape rejection across the suite wraps
	// this sentinel.
	ErrShape = tensor.ErrShape

	// ErrQueueFull is the Server's backpressure signal: the benchmark's
	// request queue is at capacity and the request was rejected without
	// queuing (surfaced as HTTP 429 by the tango-serve binary).
	ErrQueueFull = serve.ErrQueueFull

	// ErrServerClosed reports a request submitted after Server.Close began.
	ErrServerClosed = serve.ErrClosed

	// ErrNotServed reports a request naming a benchmark the Server was not
	// configured to serve.
	ErrNotServed = errors.New("tango: benchmark not served")
)
