package tango

import (
	"errors"

	"tango/internal/resilience"
	"tango/internal/serve"
	"tango/internal/tensor"
)

// Sentinel errors of the public API, for use with errors.Is.
var (
	// ErrShape reports an input whose shape or length does not match what
	// the benchmark expects: wrong image length, empty batch, empty
	// history, ragged batch.  Every shape rejection across the suite wraps
	// this sentinel.
	ErrShape = tensor.ErrShape

	// ErrQueueFull is the Server's backpressure signal: the benchmark's
	// request queue is at capacity and the request was rejected without
	// queuing (surfaced as HTTP 429 by the tango-serve binary).
	ErrQueueFull = serve.ErrQueueFull

	// ErrServerClosed reports a request submitted after Server.Close began.
	ErrServerClosed = serve.ErrClosed

	// ErrNotServed reports a request naming a benchmark the Server was not
	// configured to serve.
	ErrNotServed = errors.New("tango: benchmark not served")

	// ErrDegraded reports a request rejected because the benchmark's
	// circuit breaker is open: the engine has failed repeatedly and the
	// server is shedding work while it recovers (surfaced as HTTP 503
	// with a Retry-After hint).  The server is degraded, not dead —
	// /healthz keeps answering and probes keep testing recovery.
	ErrDegraded = errors.New("tango: serving degraded, circuit breaker open")

	// ErrInjected is the sentinel wrapped by every fault deliberately
	// injected through the resilience layer (chaos testing); use it to
	// tell injected faults from organic ones.
	ErrInjected = resilience.ErrInjected
)
